package index

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/obs"
)

// Segment-engine traffic reports into the process-wide registry. The
// gauges describe the most recently updated engine (one daemon runs
// one persistent index); the counters and histograms accumulate across
// every engine in the process.
var (
	mSegCount = obs.Default.Gauge("etap_index_segment_count",
		"Committed on-disk segments in the live manifest.")
	mSegDocs = obs.Default.Gauge("etap_index_segment_docs",
		"Documents held by committed on-disk segments.")
	mSegBytes = obs.Default.Gauge("etap_index_segment_bytes",
		"Total bytes of committed on-disk segment files.")
	mMmapBytes = obs.Default.Gauge("etap_index_segment_mmap_bytes",
		"Bytes of segment files currently memory-mapped.")
	mSegFlushes = obs.Default.Counter("etap_index_segment_flushes_total",
		"Sealed memtables flushed and committed as segments.")
	mSegFlushFailures = obs.Default.Counter("etap_index_segment_flush_failures_total",
		"Flush attempts that failed; the sealed batch stays searchable in RAM.")
	mSegMerges = obs.Default.Counter("etap_index_segment_merges_total",
		"Background merges committed under the tiered policy.")
	mSegMergeFailures = obs.Default.Counter("etap_index_segment_merge_failures_total",
		"Merge attempts that failed; input segments remain live.")
	mSegReadFailures = obs.Default.Counter("etap_index_segment_read_failures_total",
		"Postings reads that failed against a segment verified at open.")
	mSegCleanupFailures = obs.Default.Counter("etap_index_segment_cleanup_failures_total",
		"Orphan or retired segment files that could not be removed.")
	mSegFlushDur = obs.Default.Histogram("etap_index_segment_flush_duration_seconds",
		"Wall time to encode, fsync and commit one sealed memtable.", nil)
	mSegMergeDur = obs.Default.Histogram("etap_index_segment_merge_duration_seconds",
		"Wall time to merge, fsync and commit one segment tier.", nil)
)

// DefaultFlushDocs is the per-writer memtable size, in documents, at
// which a batch seals and flushes when SegmentOptions.FlushDocs is 0.
// Larger batches amortise the per-flush encode/fsync/commit cost (bulk
// loads at this default outrun the in-RAM engine; see BENCH_index.json)
// at the price of more unflushed documents in RAM and a longer
// re-index window after a crash; latency-sensitive streaming ingest
// should configure a smaller batch (STORAGE.md §8).
const DefaultFlushDocs = 8192

// DefaultMergeFactor is the tiered merge policy's fan-in when
// SegmentOptions.MergeFactor is 0: a size tier holding this many
// segments is compacted into one segment of the next tier.
const DefaultMergeFactor = 8

// SegmentOptions configures OpenSegmentIndex.
type SegmentOptions struct {
	// Dir is the index directory. It is created if missing; if it
	// holds a manifest from a previous run, the committed segments are
	// re-opened and searchable immediately — no rebuild.
	Dir string
	// FlushDocs is the per-writer memtable seal threshold in
	// documents; 0 means DefaultFlushDocs.
	FlushDocs int
	// MergeFactor is the tiered merge fan-in; 0 means
	// DefaultMergeFactor, values below 2 are clamped to 2.
	MergeFactor int
	// Writers is the number of concurrent ingest lanes; 0 means
	// GOMAXPROCS, clamped to at least 1.
	Writers int
	// CacheSize is the query-result cache capacity in entries; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// RouteSeed, when non-zero, makes writer routing deterministic
	// across restarts (see Options.RouteSeed). Routing only places
	// documents into lanes; ranked results are identical either way.
	RouteSeed uint64
}

// SegmentIndex is the persistent, segment-based search engine: the
// same query surface as the in-RAM Index (bit-identical ranked
// results, golden-tested) over immutable on-disk segments plus
// per-writer in-memory memtables. Documents are searchable the moment
// Add returns; sealed batches flush to disk in the background; a
// tiered merger compacts small segments; and the manifest commit
// protocol (STORAGE.md) makes restarts re-open segments instead of
// re-indexing the corpus.
//
// Add and all query methods are safe for concurrent use. Close flushes
// what is in memory and must not race other calls.
type SegmentIndex struct {
	dir         string
	flushDocs   int
	mergeFactor int
	route       func(string) uint64
	gen         atomic.Uint64 // bumped on every Add; versions cache entries
	cache       *queryCache   // nil when disabled

	// mu guards the searchable view: the writers' active memtables
	// (swapped under it), the sealed-but-unflushed list, and the
	// committed segment list.
	mu      sync.RWMutex
	writers []*writer
	sealing []*memSegment
	segs    []*segment

	manifestMu sync.Mutex // serializes manifest commits
	man        manifest

	flushCh   chan *memSegment
	kickCh    chan struct{}
	stopCh    chan struct{}
	flushDone chan struct{}
	mergeDone chan struct{}

	errMu    sync.Mutex
	firstErr error
	closed   bool
}

// OpenSegmentIndex opens (or creates) the segment index in o.Dir:
// loads the manifest, verifies and mmaps every committed segment,
// removes orphaned files from interrupted flushes or merges, and
// starts the background flusher and merger.
func OpenSegmentIndex(o SegmentOptions) (*SegmentIndex, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("index: SegmentOptions.Dir is required")
	}
	if o.FlushDocs <= 0 {
		o.FlushDocs = DefaultFlushDocs
	}
	if o.MergeFactor == 0 {
		o.MergeFactor = DefaultMergeFactor
	}
	if o.MergeFactor < 2 {
		o.MergeFactor = 2
	}
	if o.Writers == 0 {
		o.Writers = runtime.GOMAXPROCS(0)
	}
	if o.Writers < 1 {
		o.Writers = 1
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(o.Dir)
	if err != nil {
		return nil, err
	}

	si := &SegmentIndex{
		dir:         o.Dir,
		flushDocs:   o.FlushDocs,
		mergeFactor: o.MergeFactor,
		route:       routeFunc(o.RouteSeed),
		man:         man,
		flushCh:     make(chan *memSegment, o.Writers+2),
		kickCh:      make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		flushDone:   make(chan struct{}),
		mergeDone:   make(chan struct{}),
	}
	switch {
	case o.CacheSize > 0:
		si.cache = newQueryCache(o.CacheSize)
	case o.CacheSize == 0:
		si.cache = newQueryCache(DefaultCacheSize)
	}
	si.writers = make([]*writer, o.Writers)
	for i := range si.writers {
		si.writers[i] = newWriter(o.FlushDocs)
	}

	// Re-open committed segments; any failure here is real corruption
	// (the commit protocol never publishes a manifest referencing a
	// torn segment), so the open fails loudly rather than serving a
	// partial corpus.
	for _, ent := range man.Segments {
		seg, err := openSegment(filepath.Join(o.Dir, ent.File), ent.ID, ent.Bytes, ent.CRC32)
		if err != nil {
			for _, s := range si.segs {
				si.destroySegment(s, false)
			}
			return nil, err
		}
		si.segs = append(si.segs, seg)
		// Duplicate detection must span restarts: route every
		// recovered docID back to its owning lane's seen set.
		for _, id := range seg.ids {
			si.writerFor(id).remember(id)
		}
	}
	cleanOrphans(o.Dir, man)

	go si.flushLoop()
	go si.mergeLoop()
	si.kickMerger() // a reopened index may be behind the merge policy
	si.updateGauges()
	return si, nil
}

// writerFor routes a document ID to its owning ingest lane.
func (si *SegmentIndex) writerFor(docID string) *writer {
	if len(si.writers) == 1 {
		return si.writers[0]
	}
	return si.writers[si.route(docID)%uint64(len(si.writers))]
}

// Add indexes a document: tokenize outside any lock, append to the
// owning writer's memtable (searchable the moment this returns), and
// seal + hand the batch to the background flusher when the memtable
// reaches the flush threshold. Adding the same docID twice panics,
// matching the in-RAM engine; the seen set spans committed segments,
// so the contract holds across restarts too. Every Add invalidates the
// query cache by advancing the engine generation.
func (si *SegmentIndex) Add(docID, text string) {
	ts := terms(text)
	w := si.writerFor(docID)
	if w.add(docID, ts) {
		if sealed := si.seal(w, si.flushDocs); sealed != nil {
			si.flushCh <- sealed // blocks when the flusher is behind: ingest backpressure
		}
	}
	si.gen.Add(1)
}

// seal swaps w's memtable under the view lock — searches never observe
// a document in zero parts — and registers the sealed batch as still
// searchable until its segment commits. Returns nil if a racing seal
// already took the batch or it holds fewer than min documents.
func (si *SegmentIndex) seal(w *writer, min int) *memSegment {
	si.mu.Lock()
	defer si.mu.Unlock()
	sealed := w.swap(min)
	if sealed != nil {
		si.sealing = append(si.sealing, sealed)
	}
	return sealed
}

// Has reports whether docID is indexed — in a committed segment or a
// live memtable.
func (si *SegmentIndex) Has(docID string) bool {
	return si.writerFor(docID).has(docID)
}

// Search ranks documents matching the query and returns the top k (all
// matches when k <= 0), exactly like Index.Search.
//
//etaplint:ignore context-plumbing -- in-memory and page-cache lookup: no cancellable I/O, and a ctx parameter would suggest otherwise
func (si *SegmentIndex) Search(query string, k int) []Hit {
	return si.SearchQuery(ParseQuery(query), k)
}

// SearchQuery is Search over a pre-parsed query: cache lookup first,
// then the shared two-phase resolve across memtables, sealed batches
// and on-disk segments. Results are identical — order and score — to
// the in-RAM engine over the same documents.
//
//etaplint:ignore context-plumbing -- in-memory and page-cache lookup: no cancellable I/O, and a ctx parameter would suggest otherwise
func (si *SegmentIndex) SearchQuery(q Query, k int) []Hit {
	mQueries.Inc()

	allTerms, phrases := flattenQuery(q)
	if len(allTerms) == 0 {
		return nil
	}

	var key string
	gen := si.gen.Load()
	if si.cache != nil {
		key = cacheKey(q, k)
		if hits, ok := si.cache.get(key, gen); ok {
			return hits
		}
	}

	parts, release := si.snapshot()
	hits := resolveParts(parts, allTerms, phrases, k, true)
	release()

	if si.cache != nil {
		// Versioned under the generation read before resolving: if an
		// Add raced the search, the entry is already stale and the
		// next get drops it. Flushes and merges deliberately do NOT
		// advance the generation — they move documents between parts
		// without changing results, so cached entries stay valid.
		si.cache.put(key, gen, hits)
	}
	return hits
}

// snapshot captures the current searchable view — every writer's
// active memtable, the sealed-but-unflushed batches, and the committed
// segments — pinning the segments against concurrent retirement. The
// returned release must be called exactly once when reads finish; the
// last reader of a merged-away segment closes and deletes it.
func (si *SegmentIndex) snapshot() ([]part, func()) {
	si.mu.RLock()
	parts := make([]part, 0, len(si.writers)+len(si.sealing)+len(si.segs))
	for _, w := range si.writers {
		parts = append(parts, w.current())
	}
	for _, m := range si.sealing {
		parts = append(parts, m)
	}
	segs := make([]*segment, len(si.segs))
	copy(segs, si.segs)
	for _, s := range segs {
		s.refs.Add(1)
		parts = append(parts, s)
	}
	si.mu.RUnlock()
	release := func() {
		for _, s := range segs {
			if s.refs.Add(-1) == 0 && s.retired.Load() {
				si.destroySegment(s, true)
			}
		}
	}
	return parts, release
}

// destroySegment closes a segment's mapping exactly once and, for
// retired segments, removes its file. Errors are recorded (close) or
// counted (remove) — by this point the data lives elsewhere.
func (si *SegmentIndex) destroySegment(s *segment, remove bool) {
	s.destroyOnce.Do(func() {
		if err := s.close(); err != nil {
			si.noteErr(err)
		}
		if remove {
			if err := os.Remove(s.path); err != nil {
				mSegCleanupFailures.Inc()
			}
		}
	})
}

// DocFreq returns the document frequency of a term (normalized like
// document text), used by the PMI-IR lexicon induction.
func (si *SegmentIndex) DocFreq(term string) int {
	ts := terms(term)
	if len(ts) == 0 {
		return 0
	}
	parts, release := si.snapshot()
	defer release()
	n := 0
	for _, p := range parts {
		n += p.docFreq(ts[0])
	}
	return n
}

// CoDocFreq returns the number of documents containing both terms —
// whole-document co-occurrence. Documents never span parts, so the
// corpus-wide count is the sum of part-local counts.
func (si *SegmentIndex) CoDocFreq(a, b string) int {
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	parts, release := si.snapshot()
	defer release()
	n := 0
	for _, p := range parts {
		n += p.coDocFreq(ta[0], tb[0])
	}
	return n
}

// CoNearFreq returns the number of documents where the two terms occur
// within `window` token positions of each other. window <= 0 degrades
// to CoDocFreq.
func (si *SegmentIndex) CoNearFreq(a, b string, window int) int {
	if window <= 0 {
		return si.CoDocFreq(a, b)
	}
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	parts, release := si.snapshot()
	defer release()
	n := 0
	for _, p := range parts {
		n += p.coNearFreq(ta[0], tb[0], int32(window))
	}
	return n
}

// Len returns the number of indexed documents across memtables and
// segments.
func (si *SegmentIndex) Len() int {
	parts, release := si.snapshot()
	defer release()
	n := 0
	for _, p := range parts {
		d, _, _ := p.size()
		n += d
	}
	return n
}

// IndexStats returns current engine statistics. Shards reports the
// writer-lane count; Segments the committed on-disk segment count.
func (si *SegmentIndex) IndexStats() Stats {
	parts, release := si.snapshot()
	defer release()
	st := Stats{Shards: len(si.writers)}
	for _, p := range parts {
		d, t, ps := p.size()
		st.Docs += d
		st.Terms += t
		st.Postings += ps
	}
	si.mu.RLock()
	st.Segments = len(si.segs)
	si.mu.RUnlock()
	if si.cache != nil {
		st.CacheEntries = si.cache.len()
	}
	return st
}

// SegmentIndexStats is the segment engine's operational summary beyond
// the shared Stats: what the manifest has committed and what is still
// memory-only.
type SegmentIndexStats struct {
	// Dir is the index directory.
	Dir string
	// Generation is the committed manifest generation.
	Generation uint64
	// Segments is the number of committed on-disk segments.
	Segments int
	// SegmentDocs is the number of documents in committed segments.
	SegmentDocs int
	// SegmentBytes is the total size of committed segment files.
	SegmentBytes int64
	// MemtableDocs is the number of documents not yet flushed (active
	// plus sealed memtables); these are searchable but not durable.
	MemtableDocs int
}

// SegmentStats returns the engine's segment-level summary.
func (si *SegmentIndex) SegmentStats() SegmentIndexStats {
	si.manifestMu.Lock()
	gen := si.man.Generation
	si.manifestMu.Unlock()
	si.mu.RLock()
	defer si.mu.RUnlock()
	st := SegmentIndexStats{Dir: si.dir, Generation: gen, Segments: len(si.segs)}
	for _, s := range si.segs {
		st.SegmentDocs += len(s.ids)
		st.SegmentBytes += s.bytes
	}
	for _, w := range si.writers {
		st.MemtableDocs += w.current().docCount()
	}
	for _, m := range si.sealing {
		st.MemtableDocs += m.docCount()
	}
	return st
}

// DocIDs returns every indexed document ID in sorted order — committed
// segments, sealed batches and active memtables alike. Intended for
// recovery verification and operational inspection, not hot paths.
func (si *SegmentIndex) DocIDs() []string {
	parts, release := si.snapshot()
	defer release()
	var out []string
	for _, p := range parts {
		switch v := p.(type) {
		case *segment:
			out = append(out, v.ids...)
		case *memSegment:
			v.mu.RLock()
			out = append(out, v.ids...)
			v.mu.RUnlock()
		}
	}
	sort.Strings(out)
	return out
}

// Err returns the first background flush/merge error the engine has
// recorded, if any. A non-nil Err means some sealed data may be
// memory-only; see the OPERATIONS.md runbook.
func (si *SegmentIndex) Err() error {
	si.errMu.Lock()
	defer si.errMu.Unlock()
	return si.firstErr
}

// noteErr records the first background error for Err and Close.
func (si *SegmentIndex) noteErr(err error) {
	si.errMu.Lock()
	defer si.errMu.Unlock()
	if si.firstErr == nil {
		si.firstErr = err
	}
}

// Close seals and flushes every memtable, drains the flusher, stops
// the merger, and releases all segment mappings. The index on disk is
// complete and re-openable when Close returns. Close must not race Add
// or queries; it is idempotent.
func (si *SegmentIndex) Close() error {
	si.errMu.Lock()
	if si.closed {
		si.errMu.Unlock()
		return si.firstErr
	}
	si.closed = true
	si.errMu.Unlock()

	for _, w := range si.writers {
		if sealed := si.seal(w, 1); sealed != nil {
			si.flushCh <- sealed
		}
	}
	close(si.flushCh)
	<-si.flushDone
	close(si.stopCh)
	<-si.mergeDone

	si.mu.Lock()
	segs := si.segs
	si.segs = nil
	si.mu.Unlock()
	for _, s := range segs {
		si.destroySegment(s, false)
	}
	return si.Err()
}

// flushLoop drains sealed memtables into committed segments, one at a
// time — commits are serialized, so the manifest only ever moves
// forward.
func (si *SegmentIndex) flushLoop() {
	defer close(si.flushDone)
	for m := range si.flushCh {
		si.flushOne(m)
	}
}

// flushOne encodes one sealed memtable into a segment file, makes it
// durable, commits the manifest, and swaps the batch's searchable home
// from RAM to disk. On any failure the sealed batch simply stays in
// the searchable sealing list — queries lose nothing, durability is
// retried never (the failure is recorded and counted; see the
// disk-pressure runbook).
func (si *SegmentIndex) flushOne(m *memSegment) {
	//etaplint:ignore determinism -- metrics-only timing: the timestamp feeds the flush-duration histogram, never a result
	start := time.Now()

	si.manifestMu.Lock()
	id := si.man.NextID
	file := segmentFileName(id)
	tmpPath := filepath.Join(si.dir, file+tmpSuffix)
	ws, err := writeSegmentFile(tmpPath, m)
	if err == nil {
		// Durable data first, then the name, then the directory entry:
		// only after all three may the manifest reference the file.
		if err = os.Rename(tmpPath, filepath.Join(si.dir, file)); err == nil {
			err = syncDir(si.dir)
		}
	}
	if err != nil {
		si.manifestMu.Unlock()
		si.noteErr(err)
		mSegFlushFailures.Inc()
		return
	}
	seg, err := installSegment(filepath.Join(si.dir, file), id, ws)
	if err != nil {
		// The file is in place but unreadable — do not commit it; the
		// next open's orphan sweep removes it.
		si.manifestMu.Unlock()
		si.noteErr(err)
		mSegFlushFailures.Inc()
		return
	}
	next := si.man
	next.NextID = id + 1
	next.Generation++
	next.Segments = append(append([]manifestSegment(nil), si.man.Segments...), manifestSegment{
		ID: id, File: file, Docs: ws.meta.docs, Bytes: ws.meta.bytes, CRC32: ws.meta.crc,
	})
	if err := commitManifest(si.dir, next); err != nil {
		si.manifestMu.Unlock()
		si.destroySegment(seg, false)
		si.noteErr(err)
		mSegFlushFailures.Inc()
		return
	}
	si.man = next
	si.manifestMu.Unlock()

	// Swap the batch's searchable home: segment in, sealed memtable
	// out, atomically under the view lock.
	si.mu.Lock()
	for i, sm := range si.sealing {
		if sm == m {
			si.sealing = append(si.sealing[:i], si.sealing[i+1:]...)
			break
		}
	}
	si.segs = append(si.segs, seg)
	si.mu.Unlock()

	mSegFlushes.Inc()
	mSegFlushDur.ObserveSince(start)
	si.updateGauges()
	si.kickMerger()
}

// kickMerger nudges the background merger without blocking.
func (si *SegmentIndex) kickMerger() {
	select {
	case si.kickCh <- struct{}{}:
	default:
	}
}

// updateGauges refreshes the segment gauges from the current view.
func (si *SegmentIndex) updateGauges() {
	si.mu.RLock()
	defer si.mu.RUnlock()
	var docs int
	var bytes int64
	for _, s := range si.segs {
		docs += len(s.ids)
		bytes += s.bytes
	}
	mSegCount.Set(int64(len(si.segs)))
	mSegDocs.Set(int64(docs))
	mSegBytes.Set(bytes)
}
