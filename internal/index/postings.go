package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file holds the postings-list machinery shared by every part
// implementation: the varint delta codec segment files store postings
// in (see STORAGE.md §3), and the match-and-score algorithm that turns
// fetched postings into BM25 hits. Keeping the algorithm in one place
// is what makes the in-RAM and on-disk engines bit-identical: a shard,
// a memtable and a segment all resolve queries through the exact same
// arithmetic, differing only in where the postings bytes come from.

// appendPostings delta-encodes one term's postings list onto buf:
//
//	uvarint(docCount)
//	per posting, in ascending Doc order:
//	  uvarint(doc - prevDoc)     // prevDoc starts at 0
//	  uvarint(len(positions))
//	  per position, ascending:
//	    uvarint(pos - prevPos)   // prevPos starts at 0 per posting
//
// Document IDs are part-local and strictly increasing, so deltas after
// the first are always positive; the first delta is the raw ID.
func appendPostings(buf []byte, pl []Posting) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(pl)))
	prevDoc := int32(0)
	for _, p := range pl {
		buf = binary.AppendUvarint(buf, uint64(p.Doc-prevDoc))
		prevDoc = p.Doc
		buf = binary.AppendUvarint(buf, uint64(len(p.Positions)))
		prevPos := int32(0)
		for _, pos := range p.Positions {
			buf = binary.AppendUvarint(buf, uint64(pos-prevPos))
			prevPos = pos
		}
	}
	return buf
}

// decodePostings reverses appendPostings. It returns an error (never
// panics) on truncated or corrupt input so a damaged segment surfaces
// as a recoverable condition, not a crash.
func decodePostings(data []byte) ([]Posting, error) {
	n, off, err := readUvarint(data, 0)
	if err != nil {
		return nil, fmt.Errorf("postings count: %w", err)
	}
	pl := make([]Posting, 0, n)
	prevDoc := int32(0)
	for i := uint64(0); i < n; i++ {
		docDelta, o, err := readUvarint(data, off)
		if err != nil {
			return nil, fmt.Errorf("doc delta %d: %w", i, err)
		}
		off = o
		doc := prevDoc + int32(docDelta)
		prevDoc = doc
		posCount, o, err := readUvarint(data, off)
		if err != nil {
			return nil, fmt.Errorf("position count %d: %w", i, err)
		}
		off = o
		positions := make([]int32, 0, posCount)
		prevPos := int32(0)
		for j := uint64(0); j < posCount; j++ {
			d, o, err := readUvarint(data, off)
			if err != nil {
				return nil, fmt.Errorf("position delta %d/%d: %w", i, j, err)
			}
			off = o
			pos := prevPos + int32(d)
			prevPos = pos
			positions = append(positions, pos)
		}
		pl = append(pl, Posting{Doc: doc, Positions: positions})
	}
	if off != len(data) {
		return nil, fmt.Errorf("postings list has %d trailing bytes", len(data)-off)
	}
	return pl, nil
}

// postingsLastDoc scans an encoded postings list (off pointing just
// past the leading count) and returns the last document ID, validating
// that exactly count postings fill the buffer. It parses varint
// boundaries only — no postings are materialised — which is what lets
// segment merges run as byte copies.
func postingsLastDoc(data []byte, off int, count uint64) (int32, error) {
	doc := int32(0)
	for i := uint64(0); i < count; i++ {
		d, o, err := readUvarint(data, off)
		if err != nil {
			return 0, fmt.Errorf("doc delta %d: %w", i, err)
		}
		off = o
		doc += int32(d)
		posCount, o, err := readUvarint(data, off)
		if err != nil {
			return 0, fmt.Errorf("position count %d: %w", i, err)
		}
		off = o
		for j := uint64(0); j < posCount; j++ {
			for {
				if off >= len(data) {
					return 0, fmt.Errorf("truncated position delta %d/%d", i, j)
				}
				b := data[off]
				off++
				if b < 0x80 {
					break
				}
			}
		}
	}
	if off != len(data) {
		return 0, fmt.Errorf("postings list has %d trailing bytes", len(data)-off)
	}
	return doc, nil
}

// readUvarint decodes one uvarint at off, returning the value and the
// next offset. Unlike binary.Uvarint it reports truncation as an error.
func readUvarint(data []byte, off int) (uint64, int, error) {
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("truncated uvarint at offset %d", off)
	}
	return v, off + n, nil
}

// matchAndScore resolves a query against one part's fetched postings:
// conjunctive intersection over allTerms, phrase adjacency filtering,
// then BM25 scoring with the caller-supplied global idf values and
// average document length. post must hold an entry for every term in
// allTerms, distinct and the phrases (nil/absent means the term does
// not occur in this part). The returned hits are unordered; the caller
// merges and ranks across parts. Scores are bit-identical regardless
// of how documents are partitioned because every per-document input
// (tf, docLen, idf, avgLen) and the summation order (sorted distinct
// terms) are partition-independent.
func matchAndScore(post map[string][]Posting, docLen []float64, ids []string, allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit {
	required := make([][]Posting, 0, len(allTerms))
	for _, t := range allTerms {
		pl := post[t]
		if len(pl) == 0 {
			return nil // conjunctive: this part holds no matching docs
		}
		required = append(required, pl)
	}
	if len(required) == 0 {
		return nil
	}

	// Intersect candidate doc sets.
	candidates := docSet(required[0])
	for _, pl := range required[1:] {
		next := docSet(pl)
		for d := range candidates {
			if !next[d] {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// Phrase filter.
	for _, p := range phrases {
		for d := range candidates {
			if !phraseInPostings(post, p, d) {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// BM25 over the distinct query tokens, in sorted term order so the
	// floating-point summation is deterministic and partition-independent.
	hits := make([]Hit, 0, len(candidates))
	for d := range candidates {
		score := 0.0
		for i, t := range distinct {
			pl := post[t]
			idx := sort.Search(len(pl), func(j int) bool { return pl[j].Doc >= d })
			if idx >= len(pl) || pl[idx].Doc != d {
				continue
			}
			tf := float64(len(pl[idx].Positions))
			den := tf + bm25K1*(1-bm25B+bm25B*docLen[d]/avgLen)
			score += idf[i] * tf * (bm25K1 + 1) / den
		}
		//etaplint:ignore determinism -- per-part hit order is irrelevant: the merge ranks by hitBetter (score desc, DocID asc), a strict total order, so insertion order cannot reach the output
		hits = append(hits, Hit{DocID: ids[d], Score: score})
	}
	return hits
}

// phraseInPostings reports whether the phrase occurs contiguously in
// part-local doc d, given the part's fetched postings.
func phraseInPostings(post map[string][]Posting, phrase []string, d int32) bool {
	// Gather position lists for each phrase token in doc d.
	lists := make([][]int32, len(phrase))
	for i, t := range phrase {
		pl := post[t]
		idx := sort.Search(len(pl), func(j int) bool { return pl[j].Doc >= d })
		if idx >= len(pl) || pl[idx].Doc != d {
			return false
		}
		lists[i] = pl[idx].Positions
	}
	// For each start position of token 0, check the chain.
	for _, p0 := range lists[0] {
		ok := true
		for i := 1; i < len(lists); i++ {
			if !contains32(lists[i], p0+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// countCoDoc counts documents present in both postings lists — the
// whole-document co-occurrence the PMI-IR lexicon induction uses.
func countCoDoc(pa, pb []Posting) int {
	da := docSet(pa)
	n := 0
	for _, p := range pb {
		if da[p.Doc] {
			n++
		}
	}
	return n
}

// countCoNear counts documents where the two postings lists have a
// position pair within the window — Turney's NEAR operator.
func countCoNear(pa, pb []Posting, window int32) int {
	n := 0
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].Doc < pb[j].Doc:
			i++
		case pa[i].Doc > pb[j].Doc:
			j++
		default:
			if positionsNear(pa[i].Positions, pb[j].Positions, window) {
				n++
			}
			i++
			j++
		}
	}
	return n
}
