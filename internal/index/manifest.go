package index

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// The manifest is the segment index's commit point: a single JSON file
// naming exactly the segment files that constitute the index. Readers
// trust nothing else in the directory — a segment file not named by
// the manifest does not exist as far as the index is concerned, which
// is what makes every mutation (flush, merge) a single atomic rename.
// The full protocol and its crash matrix are specified in STORAGE.md
// §5–6.
const (
	// manifestName is the live manifest file inside an index directory.
	manifestName = "MANIFEST.json"
	// manifestFormat is the manifest schema version this code writes
	// and accepts.
	manifestFormat = 1
)

// manifestSegment is one committed segment as recorded in the
// manifest: everything the open path needs to locate and verify it.
type manifestSegment struct {
	// ID is the segment's monotonic sequence number; merged segments
	// get fresh IDs, so an ID never names two generations of bytes.
	ID uint64 `json:"id"`
	// File is the segment file name, relative to the index directory.
	File string `json:"file"`
	// Docs is the number of documents the segment holds.
	Docs int `json:"docs"`
	// Bytes is the exact file size; a mismatch at open is a torn file.
	Bytes int64 `json:"bytes"`
	// CRC32 is the IEEE checksum of the file minus its footer; it must
	// match both the footer and the bytes on disk.
	CRC32 uint32 `json:"crc32"`
}

// manifest is the on-disk commit record (MANIFEST.json).
type manifest struct {
	// Format is the manifest schema version (manifestFormat).
	Format int `json:"format"`
	// Generation increments on every commit (flush or merge); it is
	// the restart-visible counterpart of the in-process add counter
	// the query cache versions entries with.
	Generation uint64 `json:"generation"`
	// NextID is the next unused segment ID.
	NextID uint64 `json:"next_id"`
	// Segments lists the live segments in ascending ID order.
	Segments []manifestSegment `json:"segments"`
}

// loadManifest reads the committed manifest from dir. A directory with
// no manifest is a fresh, empty index — not an error.
func loadManifest(dir string) (manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return manifest{Format: manifestFormat, NextID: 1}, nil
	}
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("manifest %s: %w", dir, err)
	}
	if m.Format != manifestFormat {
		return manifest{}, fmt.Errorf("manifest %s: format %d, this build reads %d", dir, m.Format, manifestFormat)
	}
	if m.NextID == 0 {
		m.NextID = 1
	}
	return m, nil
}

// commitManifest atomically publishes a new manifest: write to a
// temporary name, fsync the file, rename over MANIFEST.json, fsync the
// directory. A crash at any point leaves either the old or the new
// manifest fully intact — never a mixture — because rename(2) within
// one directory is atomic and the directory fsync persists the switch.
func commitManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+tmpSuffix)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		cerr := f.Close()
		if cerr != nil {
			return fmt.Errorf("%w (and close: %v)", err, cerr)
		}
		return err
	}
	if err := f.Sync(); err != nil {
		cerr := f.Close()
		if cerr != nil {
			return fmt.Errorf("%w (and close: %v)", err, cerr)
		}
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename survives power
// loss, not only process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// cleanOrphans removes files in dir that the manifest does not
// reference: interrupted temporaries and segments whose commit never
// happened (or whose merge retired them but whose removal was
// interrupted). Called once at open, after the manifest's own segments
// opened successfully. Removal failures are counted, not fatal — an
// orphan is dead weight, not corruption.
func cleanOrphans(dir string, m manifest) {
	live := make(map[string]bool, len(m.Segments)+1)
	live[manifestName] = true
	for _, s := range m.Segments {
		live[s.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		mSegCleanupFailures.Inc()
		return
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || live[name] {
			continue
		}
		if !strings.HasSuffix(name, segmentSuffix) && !strings.HasSuffix(name, tmpSuffix) {
			continue // not ours: leave unrelated files alone
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			mSegCleanupFailures.Inc()
		}
	}
}
