package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the immutable on-disk segment: the encoder that
// seals a memSegment into a file, and the reader that serves searches
// from one. The byte-level layout is normatively specified in
// STORAGE.md; the constants and section order here implement format
// version 1:
//
//	[header]    magic "ETSG", version byte
//	[doc table] docCount, then (docID, tokenLen) per document
//	[postings]  per-term delta/varint postings lists (appendPostings),
//	            concatenated in sorted term order
//	[dict]      termCount, then (term, offset, byteLen, df) per term,
//	            sorted; offsets are relative to the postings section
//	[footer]    fixed 48 bytes: five u64 section pointers/counts, the
//	            IEEE CRC32 of every byte before the footer, magic "GSTE"
//
// Everything except the postings section is decoded into memory at
// open; postings are fetched lazily per query through the mmap-backed
// io.ReaderAt, so resident memory is dictionary + doc table, not the
// corpus.
const (
	segMagic     = "ETSG"
	segVersion   = 1
	segFooterLen = 48
	segFooterEnd = "GSTE"
)

// segmentSuffix is the extension committed segment files carry;
// in-progress files use segmentSuffix + tmpSuffix until their atomic
// rename (STORAGE.md §5).
const (
	segmentSuffix = ".seg"
	tmpSuffix     = ".tmp"
)

// segmentFileName renders the canonical file name for a segment ID.
func segmentFileName(id uint64) string {
	return fmt.Sprintf("seg-%016x%s", id, segmentSuffix)
}

// countingWriter tracks the byte offset and running CRC of everything
// written through it, so the encoder can record section offsets and
// seal the file with a checksum without buffering it whole.
type countingWriter struct {
	w   *bufio.Writer
	n   int64
	crc uint32
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// segMeta describes a freshly written segment file: what the manifest
// records and the open path verifies.
type segMeta struct {
	docs  int
	bytes int64
	crc   uint32
}

// writtenSegment is the full result of encoding a memtable: the
// manifest metadata plus the reader-side in-memory state (doc table,
// dictionary, section offsets). The slices alias the sealed memtable —
// sealed memtables are immutable — so a just-flushed segment installs
// with zero re-reading, re-parsing or re-verifying; only restarts pay
// the verifying parse in openSegment.
type writtenSegment struct {
	meta     segMeta
	ids      []string
	docLens  []float64
	totalLen float64
	dict     map[string]dictEntry
	terms    []string
	postBase int64
	posts    int
}

// writeSegmentFile encodes a sealed memSegment to path (which must be
// a temporary name — the caller renames it into place after fsync).
// The memtable is read under its read lock; sealed memtables are never
// written again but remain searchable while this runs.
func writeSegmentFile(path string, m *memSegment) (writtenSegment, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()

	// Sorted term order is also what keeps the file layout
	// deterministic — the same sealed batch always encodes to the same
	// bytes, regardless of dictionary map iteration order.
	terms := make([]string, 0, len(m.dict))
	for t := range m.dict {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	return writeSegmentFrame(path, m.ids, m.docLens, m.totalLen, terms,
		func(t string, scratch []byte) ([]byte, int, error) {
			pl := m.dict[t].pl
			return appendPostings(scratch, pl), len(pl), nil
		})
}

// writeSegmentFrame writes the format-v1 frame around caller-supplied
// postings: header, doc table, one emit(term) postings list per term in
// the given (sorted) order, dictionary, footer. emit appends term t's
// encoded postings list onto scratch and returns it with the list's
// document frequency. Both the flush path (encoding a memtable) and the
// merge path (patching raw input bytes) produce their files through
// this one frame, so the two paths cannot drift.
func writeSegmentFrame(path string, ids []string, docLens []float64, totalLen float64, terms []string, emit func(t string, scratch []byte) ([]byte, int, error)) (writtenSegment, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return writtenSegment{}, err
	}
	cw := &countingWriter{w: bufio.NewWriterSize(f, 1<<16)}

	fail := func(err error) (writtenSegment, error) {
		// Best-effort cleanup of the partial temp file; a leftover is
		// harmless (openers ignore and remove non-manifest files).
		if cerr := f.Close(); cerr != nil {
			err = fmt.Errorf("%w (and close: %v)", err, cerr)
		}
		if rerr := os.Remove(path); rerr != nil {
			err = fmt.Errorf("%w (and remove: %v)", err, rerr)
		}
		return writtenSegment{}, err
	}

	// Header.
	if _, err := cw.Write(append([]byte(segMagic), segVersion)); err != nil {
		return fail(err)
	}

	// Doc table.
	docsOff := cw.n
	var scratch []byte
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(ids)))
	if _, err := cw.Write(scratch); err != nil {
		return fail(err)
	}
	for i, id := range ids {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(id)))
		scratch = append(scratch, id...)
		scratch = binary.AppendUvarint(scratch, uint64(docLens[i]))
		if _, err := cw.Write(scratch); err != nil {
			return fail(err)
		}
	}

	// Postings, recording per-term extents for the dictionary.
	postOff := cw.n
	posts := 0
	extents := make([]dictEntry, len(terms))
	for i, t := range terms {
		start := cw.n - postOff
		var df int
		scratch, df, err = emit(t, scratch[:0])
		if err != nil {
			return fail(err)
		}
		if _, err := cw.Write(scratch); err != nil {
			return fail(err)
		}
		extents[i] = dictEntry{off: uint64(start), blen: uint64(cw.n - postOff - start), df: df}
		posts += df
	}

	// Dictionary.
	dictOff := cw.n
	scratch = binary.AppendUvarint(scratch[:0], uint64(len(terms)))
	if _, err := cw.Write(scratch); err != nil {
		return fail(err)
	}
	dict := make(map[string]dictEntry, len(terms))
	for i, t := range terms {
		scratch = binary.AppendUvarint(scratch[:0], uint64(len(t)))
		scratch = append(scratch, t...)
		scratch = binary.AppendUvarint(scratch, extents[i].off)
		scratch = binary.AppendUvarint(scratch, extents[i].blen)
		scratch = binary.AppendUvarint(scratch, uint64(extents[i].df))
		if _, err := cw.Write(scratch); err != nil {
			return fail(err)
		}
		dict[t] = extents[i]
	}

	// Footer: fixed-size pointers + CRC of everything before it.
	crc := cw.crc
	footer := make([]byte, 0, segFooterLen)
	footer = binary.LittleEndian.AppendUint64(footer, uint64(docsOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(postOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(dictOff))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(ids)))
	footer = binary.LittleEndian.AppendUint64(footer, uint64(len(terms)))
	footer = binary.LittleEndian.AppendUint32(footer, crc)
	footer = append(footer, segFooterEnd...)
	if _, err := cw.Write(footer); err != nil {
		return fail(err)
	}

	if err := cw.w.Flush(); err != nil {
		return fail(err)
	}
	// The commit protocol requires the data durable before the rename
	// that publishes it and before any manifest references it.
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		if rerr := os.Remove(path); rerr != nil {
			err = fmt.Errorf("%w (and remove: %v)", err, rerr)
		}
		return writtenSegment{}, err
	}
	return writtenSegment{
		meta:     segMeta{docs: len(ids), bytes: cw.n, crc: crc},
		ids:      ids,
		docLens:  docLens,
		totalLen: totalLen,
		dict:     dict,
		terms:    terms,
		postBase: postOff,
		posts:    posts,
	}, nil
}

// installSegment opens a just-written segment for search without the
// verifying parse: the caller encoded the file moments ago, so the
// in-memory state from writeSegmentFile is installed directly and only
// the data mapping is established. Restarts go through openSegment.
func installSegment(path string, id uint64, ws writtenSegment) (*segment, error) {
	data, size, err := openSegmentData(path)
	if err != nil {
		return nil, err
	}
	if size != ws.meta.bytes {
		cerr := data.Close()
		if cerr != nil {
			return nil, fmt.Errorf("segment %s: wrote %d bytes, file has %d (and close: %v)", path, ws.meta.bytes, size, cerr)
		}
		return nil, fmt.Errorf("segment %s: wrote %d bytes, file has %d", path, ws.meta.bytes, size)
	}
	return &segment{
		id:       id,
		path:     path,
		data:     data,
		bytes:    size,
		ids:      ws.ids,
		docLens:  ws.docLens,
		totalLen: ws.totalLen,
		dict:     ws.dict,
		terms:    ws.terms,
		postBase: ws.postBase,
		posts:    ws.posts,
	}, nil
}

// dictEntry locates one term's postings list inside a segment file.
type dictEntry struct {
	off, blen uint64
	df        int
}

// segment is one committed, immutable on-disk segment opened for
// search. The dictionary and document table live in memory; postings
// are decoded lazily per query from the mmap-backed data. A segment is
// never mutated after open, so all methods are safe for concurrent use
// with no locking.
type segment struct {
	id    uint64
	path  string
	data  segmentData
	bytes int64

	// Retirement plumbing: snapshots pin a segment with refs; a merge
	// that replaces it sets retired, and whoever observes refs reach
	// zero afterwards destroys it. destroyOnce makes the close+remove
	// race-free when a releasing reader and the merger tie.
	refs        atomic.Int32
	retired     atomic.Bool
	destroyOnce sync.Once

	ids      []string
	docLens  []float64
	totalLen float64
	dict     map[string]dictEntry
	terms    []string // sorted, for deterministic merge iteration
	postBase int64
	posts    int // total (term, doc) postings
}

// openSegment opens and fully verifies a committed segment file: the
// size and CRC must match what the manifest recorded (a mismatch means
// a torn or foreign file and fails the open — the manifest never
// references bytes it did not commit). Returns the ready-to-search
// segment.
func openSegment(path string, id uint64, wantBytes int64, wantCRC uint32) (*segment, error) {
	data, size, err := openSegmentData(path)
	if err != nil {
		return nil, err
	}
	s := &segment{id: id, path: path, data: data, bytes: size}
	ok := false
	defer func() {
		if !ok {
			if cerr := data.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
	}()

	if size != wantBytes {
		return nil, fmt.Errorf("segment %s: size %d, manifest says %d", path, size, wantBytes)
	}
	if size < int64(len(segMagic))+1+segFooterLen {
		return nil, fmt.Errorf("segment %s: %d bytes is below the minimum frame", path, size)
	}

	// Verify the checksum over everything before the footer.
	crc, err := crcRange(data, 0, size-segFooterLen)
	if err != nil {
		return nil, fmt.Errorf("segment %s: checksumming: %w", path, err)
	}

	// Footer.
	footer := make([]byte, segFooterLen)
	if _, err := data.ReadAt(footer, size-segFooterLen); err != nil {
		return nil, fmt.Errorf("segment %s: footer: %w", path, err)
	}
	if string(footer[segFooterLen-4:]) != segFooterEnd {
		return nil, fmt.Errorf("segment %s: bad footer magic", path)
	}
	docsOff := int64(binary.LittleEndian.Uint64(footer[0:]))
	postOff := int64(binary.LittleEndian.Uint64(footer[8:]))
	dictOff := int64(binary.LittleEndian.Uint64(footer[16:]))
	docCount := binary.LittleEndian.Uint64(footer[24:])
	termCount := binary.LittleEndian.Uint64(footer[32:])
	fileCRC := binary.LittleEndian.Uint32(footer[40:])
	if fileCRC != crc {
		return nil, fmt.Errorf("segment %s: checksum %08x, footer says %08x", path, crc, fileCRC)
	}
	if crc != wantCRC {
		return nil, fmt.Errorf("segment %s: checksum %08x, manifest says %08x", path, crc, wantCRC)
	}
	header := make([]byte, len(segMagic)+1)
	if _, err := data.ReadAt(header, 0); err != nil {
		return nil, fmt.Errorf("segment %s: header: %w", path, err)
	}
	if string(header[:len(segMagic)]) != segMagic {
		return nil, fmt.Errorf("segment %s: bad magic", path)
	}
	if header[len(segMagic)] != segVersion {
		return nil, fmt.Errorf("segment %s: format version %d, want %d", path, header[len(segMagic)], segVersion)
	}
	if docsOff < 0 || postOff < docsOff || dictOff < postOff || dictOff > size-segFooterLen {
		return nil, fmt.Errorf("segment %s: inconsistent section offsets", path)
	}
	s.postBase = postOff

	// Doc table.
	buf := make([]byte, postOff-docsOff)
	if _, err := data.ReadAt(buf, docsOff); err != nil {
		return nil, fmt.Errorf("segment %s: doc table: %w", path, err)
	}
	n, off, err := readUvarint(buf, 0)
	if err != nil {
		return nil, fmt.Errorf("segment %s: doc count: %w", path, err)
	}
	if n != docCount {
		return nil, fmt.Errorf("segment %s: doc table holds %d docs, footer says %d", path, n, docCount)
	}
	s.ids = make([]string, 0, n)
	s.docLens = make([]float64, 0, n)
	for i := uint64(0); i < n; i++ {
		idLen, o, err := readUvarint(buf, off)
		if err != nil {
			return nil, fmt.Errorf("segment %s: doc %d id length: %w", path, i, err)
		}
		off = o
		if off+int(idLen) > len(buf) {
			return nil, fmt.Errorf("segment %s: doc %d id overruns table", path, i)
		}
		id := string(buf[off : off+int(idLen)])
		off += int(idLen)
		tokens, o, err := readUvarint(buf, off)
		if err != nil {
			return nil, fmt.Errorf("segment %s: doc %d length: %w", path, i, err)
		}
		off = o
		s.ids = append(s.ids, id)
		s.docLens = append(s.docLens, float64(tokens))
		s.totalLen += float64(tokens)
	}

	// Dictionary.
	buf = make([]byte, size-segFooterLen-dictOff)
	if _, err := data.ReadAt(buf, dictOff); err != nil {
		return nil, fmt.Errorf("segment %s: dictionary: %w", path, err)
	}
	n, off, err = readUvarint(buf, 0)
	if err != nil {
		return nil, fmt.Errorf("segment %s: term count: %w", path, err)
	}
	if n != termCount {
		return nil, fmt.Errorf("segment %s: dictionary holds %d terms, footer says %d", path, n, termCount)
	}
	s.dict = make(map[string]dictEntry, n)
	s.terms = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		tLen, o, err := readUvarint(buf, off)
		if err != nil {
			return nil, fmt.Errorf("segment %s: term %d length: %w", path, i, err)
		}
		off = o
		if off+int(tLen) > len(buf) {
			return nil, fmt.Errorf("segment %s: term %d overruns dictionary", path, i)
		}
		t := string(buf[off : off+int(tLen)])
		off += int(tLen)
		var e dictEntry
		if e.off, off, err = readUvarint(buf, off); err != nil {
			return nil, fmt.Errorf("segment %s: term %q offset: %w", path, t, err)
		}
		if e.blen, off, err = readUvarint(buf, off); err != nil {
			return nil, fmt.Errorf("segment %s: term %q extent: %w", path, t, err)
		}
		var df uint64
		if df, off, err = readUvarint(buf, off); err != nil {
			return nil, fmt.Errorf("segment %s: term %q df: %w", path, t, err)
		}
		e.df = int(df)
		s.dict[t] = e
		s.terms = append(s.terms, t)
		s.posts += e.df
	}

	ok = true
	return s, nil
}

// crcRange computes the IEEE CRC32 of [off, off+n) in fixed-size
// chunks, so verification never allocates proportionally to the file.
func crcRange(r io.ReaderAt, off, n int64) (uint32, error) {
	const chunk = 256 << 10
	buf := make([]byte, chunk)
	crc := uint32(0)
	for n > 0 {
		step := int64(chunk)
		if step > n {
			step = n
		}
		if _, err := r.ReadAt(buf[:step], off); err != nil {
			return 0, err
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:step])
		off += step
		n -= step
	}
	return crc, nil
}

// postings decodes one term's postings list from disk; absent terms
// and (never expected after a verified open) decode failures return
// nil, counting the latter so operators can see a faulting segment.
func (s *segment) postings(t string) []Posting {
	e, ok := s.dict[t]
	if !ok {
		return nil
	}
	buf := make([]byte, e.blen)
	if _, err := s.data.ReadAt(buf, s.postBase+int64(e.off)); err != nil {
		mSegReadFailures.Inc()
		return nil
	}
	pl, err := decodePostings(buf)
	if err != nil {
		mSegReadFailures.Inc()
		return nil
	}
	return pl
}

// rawPostings reads one term's encoded postings bytes without decoding
// them, reusing buf when it is large enough — the merge path copies
// these bytes into the merged file nearly verbatim (see
// writeMergedSegment).
func (s *segment) rawPostings(e dictEntry, buf []byte) ([]byte, error) {
	if uint64(cap(buf)) < e.blen {
		buf = make([]byte, e.blen)
	} else {
		buf = buf[:e.blen]
	}
	if _, err := s.data.ReadAt(buf, s.postBase+int64(e.off)); err != nil {
		return nil, err
	}
	return buf, nil
}

// snapshotStats implements part from the in-memory dictionary alone.
func (s *segment) snapshotStats(distinct []string) partStats {
	st := partStats{docs: len(s.ids), totalLen: s.totalLen, df: make([]int, len(distinct))}
	for i, t := range distinct {
		st.df[i] = s.dict[t].df
	}
	return st
}

// searchPart implements part: each needed term's postings are decoded
// once, then the shared matchAndScore runs exactly as it does for the
// in-RAM parts.
func (s *segment) searchPart(allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit {
	fetched := make(map[string][]Posting, len(distinct))
	for _, t := range distinct {
		fetched[t] = s.postings(t)
	}
	return matchAndScore(fetched, s.docLens, s.ids, allTerms, phrases, distinct, idf, avgLen)
}

// docFreq implements part.
func (s *segment) docFreq(t string) int { return s.dict[t].df }

// coDocFreq implements part.
func (s *segment) coDocFreq(ta, tb string) int {
	if s.dict[ta].df == 0 || s.dict[tb].df == 0 {
		return 0
	}
	return countCoDoc(s.postings(ta), s.postings(tb))
}

// coNearFreq implements part.
func (s *segment) coNearFreq(ta, tb string, window int32) int {
	if s.dict[ta].df == 0 || s.dict[tb].df == 0 {
		return 0
	}
	return countCoNear(s.postings(ta), s.postings(tb), window)
}

// size implements part.
func (s *segment) size() (docs, terms, postings int) {
	return len(s.ids), len(s.terms), s.posts
}

// close releases the segment's data mapping.
func (s *segment) close() error { return s.data.Close() }
