//go:build !unix

package index

import (
	"fmt"
	"os"
)

// openSegmentData opens a committed segment for random access on
// platforms without mmap support: a kept-open file handle serving
// pread. Search behaviour is identical to the mmap path, only paging
// economics differ.
func openSegmentData(path string) (segmentData, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		cerr := f.Close()
		if cerr != nil {
			return nil, 0, fmt.Errorf("stat %s: %w (and close: %v)", path, err, cerr)
		}
		return nil, 0, err
	}
	return f, fi.Size(), nil
}
