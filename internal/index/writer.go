package index

import "sync"

// memSegment is an active in-memory segment: the mutable batch one
// writer accumulates before it is sealed and flushed to disk. Its
// shape mirrors the on-disk format — one postings list per term, in
// part-local doc order — so sealing is a sort of the term dictionary
// plus a straight encode, with no per-document restructuring.
//
// Unlike shard.add, add appends tokens directly into the per-term
// lists with no per-document scratch map: one dictionary lookup per
// token, positions appended in place. That makes the segment engine's
// ingest path cheaper than the in-RAM engine's even before flushing
// frees the batch from the garbage collector's working set.
//
// All methods synchronize through the RWMutex; a sealed memSegment is
// never written again but stays searchable until its flushed segment
// is committed and swapped into the engine view.
type memSegment struct {
	mu       sync.RWMutex
	ids      []string
	docLens  []float64
	totalLen float64
	dict     map[string]*memPostings
	posts    int // total (term, doc) postings, for Stats
}

// memPostings is one term's growing postings list. The pointer
// indirection keeps the dictionary's values stable while lists grow.
type memPostings struct {
	pl []Posting
}

func newMemSegment() *memSegment {
	return &memSegment{dict: make(map[string]*memPostings)}
}

// add appends one tokenized document. Documents get ascending
// part-local IDs; the caller (writer) guarantees docID uniqueness.
func (m *memSegment) add(docID string, ts []string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	doc := int32(len(m.ids))
	m.ids = append(m.ids, docID)
	m.docLens = append(m.docLens, float64(len(ts)))
	m.totalLen += float64(len(ts))
	for pos, t := range ts {
		tp := m.dict[t]
		if tp == nil {
			tp = &memPostings{}
			m.dict[t] = tp
		}
		if n := len(tp.pl); n == 0 || tp.pl[n-1].Doc != doc {
			tp.pl = append(tp.pl, Posting{Doc: doc})
			m.posts++
		}
		last := &tp.pl[len(tp.pl)-1]
		last.Positions = append(last.Positions, int32(pos))
	}
}

// docCount returns the number of documents in the memtable.
func (m *memSegment) docCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ids)
}

// snapshotStats implements part.
func (m *memSegment) snapshotStats(distinct []string) partStats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := partStats{docs: len(m.ids), totalLen: m.totalLen, df: make([]int, len(distinct))}
	for i, t := range distinct {
		if tp := m.dict[t]; tp != nil {
			st.df[i] = len(tp.pl)
		}
	}
	return st
}

// searchPart implements part through the shared matchAndScore
// algorithm, under the read lock.
func (m *memSegment) searchPart(allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit {
	m.mu.RLock()
	defer m.mu.RUnlock()
	fetched := make(map[string][]Posting, len(distinct))
	for _, t := range distinct {
		if tp := m.dict[t]; tp != nil {
			fetched[t] = tp.pl
		}
	}
	return matchAndScore(fetched, m.docLens, m.ids, allTerms, phrases, distinct, idf, avgLen)
}

// docFreq implements part.
func (m *memSegment) docFreq(t string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if tp := m.dict[t]; tp != nil {
		return len(tp.pl)
	}
	return 0
}

// coDocFreq implements part.
func (m *memSegment) coDocFreq(ta, tb string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return countCoDoc(m.listOf(ta), m.listOf(tb))
}

// coNearFreq implements part.
func (m *memSegment) coNearFreq(ta, tb string, window int32) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return countCoNear(m.listOf(ta), m.listOf(tb), window)
}

// listOf returns a term's postings list; callers hold at least the
// read lock.
func (m *memSegment) listOf(t string) []Posting {
	if tp := m.dict[t]; tp != nil {
		return tp.pl
	}
	return nil
}

// size implements part.
func (m *memSegment) size() (docs, terms, postings int) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.ids), len(m.dict), m.posts
}

// writer is one ingest lane of the segment engine. Documents are
// routed to a writer by docID hash, so writers never contend with each
// other — each owns its active memSegment outright ("lock-free" across
// lanes; within a lane a mutex orders appends against seals). The seen
// set spans everything ever routed here — flushed segments included —
// so duplicate detection survives seals, merges and reopens.
type writer struct {
	limit int // docs per memtable before a seal is requested
	mu    sync.Mutex
	seen  map[string]struct{}
	mem   *memSegment
}

func newWriter(limit int) *writer {
	return &writer{limit: limit, seen: make(map[string]struct{}), mem: newMemSegment()}
}

// add indexes one tokenized document and reports whether the active
// memtable has reached the seal threshold. Duplicate docIDs panic,
// matching the in-RAM engine's contract.
func (w *writer) add(docID string, ts []string) (full bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.seen[docID]; dup {
		panic("index: duplicate document " + docID)
	}
	w.seen[docID] = struct{}{}
	w.mem.add(docID, ts)
	return w.mem.docCount() >= w.limit
}

// has reports whether docID was ever routed to this writer.
func (w *writer) has(docID string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.seen[docID]
	return ok
}

// remember records a docID recovered from a committed segment at open
// time, so reopened engines detect duplicates across restarts.
func (w *writer) remember(docID string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seen[docID] = struct{}{}
}

// current returns the active memtable.
func (w *writer) current() *memSegment {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mem
}

// swap replaces the active memtable with a fresh one and returns the
// sealed predecessor, or nil if the memtable is smaller than min docs
// (a racing seal already took it, or there is nothing to seal). The
// engine calls this under its view lock so searches never observe a
// document in zero parts.
func (w *writer) swap(min int) *memSegment {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.mem.docCount() < min || w.mem.docCount() == 0 {
		return nil
	}
	sealed := w.mem
	w.mem = newMemSegment()
	return sealed
}
