package index

import (
	"math"
	"sync"
)

// shard is one slice of the in-RAM index: a term→postings map over the
// subset of documents whose ID hashes to it. A document lives entirely
// within one shard, so conjunctive matching, phrase adjacency and
// per-document scoring never cross shard boundaries; only document
// frequencies and length statistics must be aggregated globally
// (resolveParts does that before fanning out).
//
// Each shard carries its own RWMutex: Add takes the write lock of the
// owning shard only, searches take read locks, so bulk loading
// parallelizes across shards and queries never serialize behind each
// other.
type shard struct {
	mu       sync.RWMutex
	ids      []string
	byID     map[string]int32
	postings map[string][]Posting
	docLen   []float64
	totalLen float64
}

func newShard() *shard {
	return &shard{
		byID:     make(map[string]int32),
		postings: make(map[string][]Posting),
	}
}

// add indexes one document under the shard's write lock. Duplicate IDs
// panic (the hash routes equal IDs to the same shard, so shard-local
// detection is global detection).
func (s *shard) add(docID string, ts []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[docID]; dup {
		panic("index: duplicate document " + docID)
	}
	doc := int32(len(s.ids))
	s.ids = append(s.ids, docID)
	s.byID[docID] = doc
	s.docLen = append(s.docLen, float64(len(ts)))
	s.totalLen += float64(len(ts))

	seenAt := map[string][]int32{}
	for pos, term := range ts {
		seenAt[term] = append(seenAt[term], int32(pos))
	}
	for term, positions := range seenAt {
		s.postings[term] = append(s.postings[term], Posting{Doc: doc, Positions: positions})
	}
}

// has reports whether the shard holds docID.
func (s *shard) has(docID string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.byID[docID]
	return ok
}

// snapshotStats reads the shard's corpus statistics under the read lock.
func (s *shard) snapshotStats(distinct []string) partStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := partStats{docs: len(s.ids), totalLen: s.totalLen, df: make([]int, len(distinct))}
	for i, t := range distinct {
		st.df[i] = len(s.postings[t])
	}
	return st
}

// searchPart resolves the query against this shard's documents through
// the shared matchAndScore algorithm, under the read lock. The fetched
// postings map holds references into the shard's live postings slices;
// it never escapes the lock.
func (s *shard) searchPart(allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fetched := make(map[string][]Posting, len(distinct)+len(phrases))
	for _, t := range distinct {
		fetched[t] = s.postings[t]
	}
	return matchAndScore(fetched, s.docLen, s.ids, allTerms, phrases, distinct, idf, avgLen)
}

// coDocFreq counts this shard's documents containing both terms.
func (s *shard) coDocFreq(ta, tb string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return countCoDoc(s.postings[ta], s.postings[tb])
}

// coNearFreq counts this shard's documents where the two terms occur
// within `window` positions of each other.
func (s *shard) coNearFreq(ta, tb string, window int32) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return countCoNear(s.postings[ta], s.postings[tb], window)
}

// docFreq returns the shard-local document frequency of one term.
func (s *shard) docFreq(t string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.postings[t])
}

// size reports the shard's document count and number of postings-map
// entries (term, docs-containing-it pairs) for Stats.
func (s *shard) size() (docs, terms, postings int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs = len(s.ids)
	terms = len(s.postings)
	for _, pl := range s.postings {
		postings += len(pl)
	}
	return docs, terms, postings
}

func contains32(sorted []int32, v int32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == v
}

func docSet(pl []Posting) map[int32]bool {
	out := make(map[int32]bool, len(pl))
	for _, p := range pl {
		out[p.Doc] = true
	}
	return out
}

// positionsNear reports whether two sorted position lists have a pair
// within the window.
func positionsNear(a, b []int32, window int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= window {
			return true
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return false
}

// idf is the BM25 inverse document frequency for a term with document
// frequency df in a corpus of n documents.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}
