package index

import (
	"math"
	"sort"
	"sync"
)

// shard is one slice of the index: a term→postings map over the subset
// of documents whose ID hashes to it. A document lives entirely within
// one shard, so conjunctive matching, phrase adjacency and per-document
// scoring never cross shard boundaries; only document frequencies and
// length statistics must be aggregated globally (SearchQuery does that
// before fanning out).
//
// Each shard carries its own RWMutex: Add takes the write lock of the
// owning shard only, searches take read locks, so bulk loading
// parallelizes across shards and queries never serialize behind each
// other.
type shard struct {
	mu       sync.RWMutex
	ids      []string
	byID     map[string]int32
	postings map[string][]Posting
	docLen   []float64
	totalLen float64
}

func newShard() *shard {
	return &shard{
		byID:     make(map[string]int32),
		postings: make(map[string][]Posting),
	}
}

// add indexes one document under the shard's write lock. Duplicate IDs
// panic (the hash routes equal IDs to the same shard, so shard-local
// detection is global detection).
func (s *shard) add(docID string, ts []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.byID[docID]; dup {
		panic("index: duplicate document " + docID)
	}
	doc := int32(len(s.ids))
	s.ids = append(s.ids, docID)
	s.byID[docID] = doc
	s.docLen = append(s.docLen, float64(len(ts)))
	s.totalLen += float64(len(ts))

	seenAt := map[string][]int32{}
	for pos, term := range ts {
		seenAt[term] = append(seenAt[term], int32(pos))
	}
	for term, positions := range seenAt {
		s.postings[term] = append(s.postings[term], Posting{Doc: doc, Positions: positions})
	}
}

// stats is the shard's contribution to the corpus-wide statistics BM25
// needs: document count, summed document length, and per-term document
// frequencies for the query's distinct terms.
type shardStats struct {
	docs     int
	totalLen float64
	df       []int // parallel to the distinct-terms slice passed in
}

// snapshotStats reads the shard's corpus statistics under the read lock.
func (s *shard) snapshotStats(distinct []string) shardStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := shardStats{docs: len(s.ids), totalLen: s.totalLen, df: make([]int, len(distinct))}
	for i, t := range distinct {
		st.df[i] = len(s.postings[t])
	}
	return st
}

// search resolves the query against this shard's documents: conjunctive
// intersection, phrase adjacency filtering, then BM25 scoring with the
// caller-supplied global idf values and average document length. The
// returned hits are unordered; the caller merges and ranks across
// shards. Scores are bit-identical regardless of shard count because
// every per-document input (tf, docLen, idf, avgLen) and the summation
// order (sorted distinct terms) are shard-independent.
func (s *shard) search(allTerms []string, phrases [][]string, distinct []string, idf []float64, avgLen float64) []Hit {
	s.mu.RLock()
	defer s.mu.RUnlock()

	required := make([][]Posting, 0, len(allTerms))
	for _, t := range allTerms {
		pl, ok := s.postings[t]
		if !ok {
			return nil // conjunctive: this shard holds no matching docs
		}
		required = append(required, pl)
	}
	if len(required) == 0 {
		return nil
	}

	// Intersect candidate doc sets.
	candidates := docSet(required[0])
	for _, pl := range required[1:] {
		next := docSet(pl)
		for d := range candidates {
			if !next[d] {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// Phrase filter.
	for _, p := range phrases {
		for d := range candidates {
			if !s.phraseIn(p, d) {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// BM25 over the distinct query tokens, in sorted term order so the
	// floating-point summation is deterministic and shard-independent.
	hits := make([]Hit, 0, len(candidates))
	for d := range candidates {
		score := 0.0
		for i, t := range distinct {
			pl := s.postings[t]
			idx := sort.Search(len(pl), func(j int) bool { return pl[j].Doc >= d })
			if idx >= len(pl) || pl[idx].Doc != d {
				continue
			}
			tf := float64(len(pl[idx].Positions))
			den := tf + bm25K1*(1-bm25B+bm25B*s.docLen[d]/avgLen)
			score += idf[i] * tf * (bm25K1 + 1) / den
		}
		//etaplint:ignore determinism -- per-shard hit order is irrelevant: the merge ranks by hitBetter (score desc, DocID asc), a strict total order, so insertion order cannot reach the output
		hits = append(hits, Hit{DocID: s.ids[d], Score: score})
	}
	return hits
}

// phraseIn reports whether the phrase occurs contiguously in doc d.
// Callers hold at least the read lock.
func (s *shard) phraseIn(phrase []string, d int32) bool {
	// Gather position lists for each phrase token in doc d.
	lists := make([][]int32, len(phrase))
	for i, t := range phrase {
		pl := s.postings[t]
		idx := sort.Search(len(pl), func(j int) bool { return pl[j].Doc >= d })
		if idx >= len(pl) || pl[idx].Doc != d {
			return false
		}
		lists[i] = pl[idx].Positions
	}
	// For each start position of token 0, check the chain.
	for _, p0 := range lists[0] {
		ok := true
		for i := 1; i < len(lists); i++ {
			if !contains32(lists[i], p0+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// coDocFreq counts this shard's documents containing both terms.
func (s *shard) coDocFreq(ta, tb string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	da := docSet(s.postings[ta])
	n := 0
	for _, p := range s.postings[tb] {
		if da[p.Doc] {
			n++
		}
	}
	return n
}

// coNearFreq counts this shard's documents where the two terms occur
// within `window` positions of each other.
func (s *shard) coNearFreq(ta, tb string, window int32) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	pa := s.postings[ta]
	pb := s.postings[tb]
	n := 0
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].Doc < pb[j].Doc:
			i++
		case pa[i].Doc > pb[j].Doc:
			j++
		default:
			if positionsNear(pa[i].Positions, pb[j].Positions, window) {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// docFreq returns the shard-local document frequency of one term.
func (s *shard) docFreq(t string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.postings[t])
}

// size reports the shard's document count and number of postings-map
// entries (term, docs-containing-it pairs) for Stats.
func (s *shard) size() (docs, terms, postings int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	docs = len(s.ids)
	terms = len(s.postings)
	for _, pl := range s.postings {
		postings += len(pl)
	}
	return docs, terms, postings
}

func contains32(sorted []int32, v int32) bool {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= v })
	return i < len(sorted) && sorted[i] == v
}

func docSet(pl []Posting) map[int32]bool {
	out := make(map[int32]bool, len(pl))
	for _, p := range pl {
		out[p.Doc] = true
	}
	return out
}

// positionsNear reports whether two sorted position lists have a pair
// within the window.
func positionsNear(a, b []int32, window int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= window {
			return true
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return false
}

// idf is the BM25 inverse document frequency for a term with document
// frequency df in a corpus of n documents.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}
