package index

import (
	"fmt"
	"testing"
)

func buildIndex() *Index {
	ix := New()
	ix.Add("d1", "Acme named a new CEO on Friday after the old chief resigned")
	ix.Add("d2", "The new CEO of Widget Corp outlined a growth strategy")
	ix.Add("d3", "A ceo search firm ranked the new executives of the year")
	ix.Add("d4", "Weather stayed pleasant and the new park opened")
	ix.Add("d5", "IBM acquired Daksh for millions and analysts cheered")
	ix.Add("d6", "Daksh employees welcomed the IBM deal in Bangalore")
	return ix
}

func ids(hits []Hit) []string {
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.DocID
	}
	return out
}

func TestSearchPhrase(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search(`"new ceo"`, 0)
	got := map[string]bool{}
	for _, h := range hits {
		got[h.DocID] = true
	}
	if !got["d1"] || !got["d2"] {
		t.Fatalf("phrase results = %v, want d1 and d2", ids(hits))
	}
	if got["d3"] {
		t.Fatalf("d3 matched phrase but tokens are not adjacent: %v", ids(hits))
	}
	if got["d4"] {
		t.Fatalf("d4 has 'new' but no 'ceo': %v", ids(hits))
	}
}

func TestSearchConjunctiveTerms(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search("IBM Daksh", 0)
	if len(hits) != 2 {
		t.Fatalf("got %v, want d5 and d6", ids(hits))
	}
	for _, h := range hits {
		if h.DocID != "d5" && h.DocID != "d6" {
			t.Fatalf("unexpected hit %v", h)
		}
	}
}

func TestSearchMissingTermEmptiesResult(t *testing.T) {
	ix := buildIndex()
	if hits := ix.Search("IBM zebra", 0); len(hits) != 0 {
		t.Fatalf("conjunctive semantics violated: %v", ids(hits))
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildIndex()
	hits := ix.Search("new", 1)
	if len(hits) != 1 {
		t.Fatalf("k=1 returned %d hits", len(hits))
	}
}

func TestSearchRankingPrefersHigherTF(t *testing.T) {
	ix := New()
	ix.Add("rich", "merger merger merger merger deal deal")
	ix.Add("poor", "merger happened and many other things were also discussed at length today")
	hits := ix.Search("merger", 0)
	if len(hits) != 2 || hits[0].DocID != "rich" {
		t.Fatalf("ranking = %v", ids(hits))
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatalf("scores not ordered: %v", hits)
	}
}

func TestSearchStemsQueryAndDocument(t *testing.T) {
	ix := New()
	ix.Add("d", "The company acquired three startups")
	if hits := ix.Search("acquire", 0); len(hits) != 1 {
		t.Fatalf("stemming failed: %v", ids(hits))
	}
	if hits := ix.Search("acquisitions acquired", 0); len(hits) != 0 {
		// "acquisitions" stems to acquisit, absent from the doc.
		t.Fatalf("conjunctive stem mismatch should return empty: %v", ids(hits))
	}
}

func TestSearchNumbers(t *testing.T) {
	ix := New()
	ix.Add("d", "Revenue for Q4 2004 reached record levels")
	if hits := ix.Search("2004", 0); len(hits) != 1 {
		t.Fatalf("number search failed: %v", ids(hits))
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	ix := buildIndex()
	if hits := ix.Search("", 0); hits != nil {
		t.Fatalf("empty query: %v", ids(hits))
	}
	if hits := ix.Search(`""`, 0); hits != nil {
		t.Fatalf("empty phrase: %v", ids(hits))
	}
}

func TestSearchCaseInsensitive(t *testing.T) {
	ix := buildIndex()
	a := ix.Search("ibm daksh", 0)
	b := ix.Search("IBM DAKSH", 0)
	if len(a) != len(b) {
		t.Fatalf("case sensitivity: %v vs %v", ids(a), ids(b))
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	ix := New()
	ix.Add("d", "text")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate add")
		}
	}()
	ix.Add("d", "other text")
}

func TestParseQuery(t *testing.T) {
	q := ParseQuery(`"new ceo" growth "change in management"`)
	if len(q.Phrases) != 2 {
		t.Fatalf("phrases = %v", q.Phrases)
	}
	if len(q.Phrases[0]) != 2 || q.Phrases[0][0] != "new" || q.Phrases[0][1] != "ceo" {
		t.Fatalf("first phrase = %v", q.Phrases[0])
	}
	if len(q.Terms) != 1 || q.Terms[0] != "growth" {
		t.Fatalf("terms = %v", q.Terms)
	}
}

func TestParseQueryUnterminatedQuote(t *testing.T) {
	// A dangling quote must not swallow the rest of the query: the tail
	// parses as plain terms.
	q := ParseQuery(`growth "new ceo`)
	if len(q.Phrases) != 0 {
		t.Fatalf("phrases = %v, want none", q.Phrases)
	}
	want := map[string]bool{"growth": true, "new": true, "ceo": true}
	if len(q.Terms) != 3 {
		t.Fatalf("terms = %v, want growth/new/ceo", q.Terms)
	}
	for _, term := range q.Terms {
		if !want[term] {
			t.Fatalf("unexpected term %q in %v", term, q.Terms)
		}
	}
	// A valid phrase before the dangling quote still parses as a phrase.
	q = ParseQuery(`"IBM Daksh" deal "new ceo`)
	if len(q.Phrases) != 1 || len(q.Phrases[0]) != 2 {
		t.Fatalf("phrases = %v, want the IBM Daksh phrase only", q.Phrases)
	}
	if len(q.Terms) != 3 {
		t.Fatalf("terms = %v, want deal/new/ceo", q.Terms)
	}
}

func TestSearchUnterminatedQuoteMatches(t *testing.T) {
	ix := buildIndex()
	// Previously the dangling-quote tail was dropped and this query
	// degenerated to match-nothing; now it behaves like "IBM Daksh".
	hits := ix.Search(`IBM "Daksh`, 0)
	if len(hits) != 2 {
		t.Fatalf("got %v, want d5 and d6", ids(hits))
	}
}

func TestShardsAndStats(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 3})
	if ix.Shards() != 3 {
		t.Fatalf("Shards() = %d", ix.Shards())
	}
	ix.Add("a", "merger announced today")
	ix.Add("b", "merger closed yesterday")
	st := ix.IndexStats()
	if st.Docs != 2 || st.Shards != 3 || st.Postings == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDocFreqAndCoDocFreq(t *testing.T) {
	ix := buildIndex()
	if df := ix.DocFreq("ceo"); df != 3 {
		t.Errorf("DocFreq(ceo) = %d, want 3", df)
	}
	if df := ix.DocFreq("zebra"); df != 0 {
		t.Errorf("DocFreq(zebra) = %d, want 0", df)
	}
	if co := ix.CoDocFreq("IBM", "Daksh"); co != 2 {
		t.Errorf("CoDocFreq(IBM, Daksh) = %d, want 2", co)
	}
	if co := ix.CoDocFreq("IBM", "weather"); co != 0 {
		t.Errorf("CoDocFreq(IBM, weather) = %d, want 0", co)
	}
}

func TestCoNearFreq(t *testing.T) {
	ix := New()
	ix.Add("near", "revenue up sharply this quarter")
	ix.Add("far", "revenue was flat but the outlook and many other parts of the business with different words entirely looked up")
	ix.Add("none", "revenue was flat")

	if got := ix.CoNearFreq("revenue", "up", 5); got != 1 {
		t.Errorf("window 5: got %d, want 1 (only the adjacent doc)", got)
	}
	if got := ix.CoNearFreq("revenue", "up", 50); got != 2 {
		t.Errorf("window 50: got %d, want 2", got)
	}
	// window <= 0 degrades to document co-occurrence.
	if got := ix.CoNearFreq("revenue", "up", 0); got != ix.CoDocFreq("revenue", "up") {
		t.Errorf("window 0: got %d, want CoDocFreq", got)
	}
	if got := ix.CoNearFreq("revenue", "zebra", 5); got != 0 {
		t.Errorf("absent term: got %d", got)
	}
}

func TestSearchDeterministicOrder(t *testing.T) {
	ix := buildIndex()
	a := ids(ix.Search("the new", 0))
	b := ids(ix.Search("the new", 0))
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("nondeterministic order: %v vs %v", a, b)
	}
}

func BenchmarkSearchPhrase(b *testing.B) {
	ix := New()
	for i := 0; i < 2000; i++ {
		ix.Add(fmt.Sprintf("d%d", i),
			"The new CEO of the company outlined a growth strategy for the coming year and investors reacted")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search(`"new ceo"`, 10)
	}
}

func BenchmarkAdd(b *testing.B) {
	text := "The new CEO of the company outlined a growth strategy for the coming year and investors reacted"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := New()
		for j := 0; j < 100; j++ {
			ix.Add(fmt.Sprintf("d%d", j), text)
		}
	}
}
