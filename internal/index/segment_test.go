package index

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// randomPostings builds a random but valid postings list: ascending doc
// IDs, each with a non-empty ascending position list.
func randomPostings(rng *rand.Rand, docs int) []Posting {
	pl := make([]Posting, 0, docs)
	doc := int32(0)
	for i := 0; i < docs; i++ {
		doc += 1 + int32(rng.Intn(50))
		pos := make([]int32, 1+rng.Intn(8))
		p := int32(rng.Intn(10))
		for j := range pos {
			pos[j] = p
			p += 1 + int32(rng.Intn(20))
		}
		pl = append(pl, Posting{Doc: doc, Positions: pos})
	}
	return pl
}

func TestPostingsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		want := randomPostings(rng, rng.Intn(40))
		buf := appendPostings(nil, want)
		got, err := decodePostings(buf)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(want) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: empty list decoded to %d postings", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: round trip mismatch\nwant %v\ngot  %v", trial, want, got)
		}
	}
}

func TestPostingsDecodeRejectsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	full := appendPostings(nil, randomPostings(rng, 20))
	for cut := 0; cut < len(full); cut++ {
		if _, err := decodePostings(full[:cut]); err == nil && cut != 0 {
			// cut==0 is legitimately an empty encoding only if the list
			// was empty; a 20-posting list must fail at every prefix.
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(full))
		}
	}
	if _, err := decodePostings(append(append([]byte(nil), full...), 0x00)); err == nil {
		t.Fatal("decode accepted trailing bytes")
	}
}

// sealedMemSegment builds a memSegment via the real tokenizer.
func sealedMemSegment(docs []corpusDoc) *memSegment {
	m := newMemSegment()
	for _, d := range docs {
		m.add(d.id, terms(d.text))
	}
	return m
}

func TestSegmentFileRoundTrip(t *testing.T) {
	docs := syntheticCorpus(200, 11)
	m := sealedMemSegment(docs)
	path := filepath.Join(t.TempDir(), "seg-test.seg")
	ws, err := writeSegmentFile(path, m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	meta := ws.meta
	if meta.docs != len(docs) {
		t.Fatalf("meta.docs = %d, want %d", meta.docs, len(docs))
	}
	s, err := openSegment(path, 1, meta.bytes, meta.crc)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.close()

	md, mt, mp := m.size()
	sd, st, sp := s.size()
	if sd != md || st != mt || sp != mp {
		t.Fatalf("segment size (%d,%d,%d) != memtable size (%d,%d,%d)", sd, st, sp, md, mt, mp)
	}
	// Every term's postings must survive the disk round trip exactly.
	for term, tp := range m.dict {
		got := s.postings(term)
		if !reflect.DeepEqual(got, tp.pl) {
			t.Fatalf("term %q postings mismatch", term)
		}
	}
	// And the same file must encode identically again (deterministic
	// layout regardless of map iteration order).
	path2 := filepath.Join(t.TempDir(), "seg-test2.seg")
	ws2, err := writeSegmentFile(path2, m)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	meta2 := ws2.meta
	if meta2.crc != meta.crc || meta2.bytes != meta.bytes {
		t.Fatalf("re-encoding changed bytes: (%d,%08x) vs (%d,%08x)", meta.bytes, meta.crc, meta2.bytes, meta2.crc)
	}
}

// TestOpenRejectsTornSegment backs the crash-recovery matrix rows for
// torn segment files (STORAGE.md §6): a size mismatch, a flipped byte
// anywhere, or a truncated tail must all fail verification at open.
func TestOpenRejectsTornSegment(t *testing.T) {
	docs := syntheticCorpus(50, 12)
	m := sealedMemSegment(docs)
	dir := t.TempDir()
	path := filepath.Join(dir, "seg-torn.seg")
	ws, err := writeSegmentFile(path, m)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	meta := ws.meta
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	restore := func() {
		if err := os.WriteFile(path, orig, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Truncation at several depths, including mid-footer.
	for _, cut := range []int64{meta.bytes - 1, meta.bytes - segFooterLen, meta.bytes / 2, 3} {
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		if s, err := openSegment(path, 1, meta.bytes, meta.crc); err == nil {
			s.close()
			t.Fatalf("open accepted segment truncated to %d bytes", cut)
		}
		restore()
	}

	// A single flipped byte in each section must break the checksum.
	for _, off := range []int{0, 7, int(meta.bytes) / 2, int(meta.bytes) - segFooterLen - 1} {
		mut := append([]byte(nil), orig...)
		mut[off] ^= 0x40
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if s, err := openSegment(path, 1, meta.bytes, meta.crc); err == nil {
			s.close()
			t.Fatalf("open accepted segment with byte %d flipped", off)
		}
	}
	restore()

	// Manifest disagreement: right bytes on disk, wrong expectation.
	if s, err := openSegment(path, 1, meta.bytes+1, meta.crc); err == nil {
		s.close()
		t.Fatal("open accepted size differing from manifest")
	}
	if s, err := openSegment(path, 1, meta.bytes, meta.crc^1); err == nil {
		s.close()
		t.Fatal("open accepted checksum differing from manifest")
	}

	// Control: the pristine file opens.
	s, err := openSegment(path, 1, meta.bytes, meta.crc)
	if err != nil {
		t.Fatalf("pristine segment rejected: %v", err)
	}
	s.close()
}
