package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// corpusDoc is one synthetic document for the sharding tests.
type corpusDoc struct {
	id, text string
}

// syntheticCorpus generates n deterministic pseudo-business documents
// with a seeded source, so every shard configuration indexes the exact
// same material.
func syntheticCorpus(n int, seed int64) []corpusDoc {
	rng := rand.New(rand.NewSource(seed))
	subjects := []string{"Acme", "Widget Corp", "IBM", "Daksh", "Initech", "Globex", "Hooli", "Vandelay"}
	verbs := []string{"acquired", "merged with", "appointed", "reported", "announced", "outlined", "expanded", "restructured"}
	objects := []string{"a new CEO", "record revenue", "a growth strategy", "the merger", "quarterly earnings", "a joint venture", "new leadership", "cost cuts"}
	tails := []string{"on Friday", "in Bangalore", "for millions", "this quarter", "after the announcement", "according to analysts", "in 2004", "despite concerns"}
	docs := make([]corpusDoc, n)
	for i := range docs {
		var text string
		sentences := 2 + rng.Intn(4)
		for s := 0; s < sentences; s++ {
			text += fmt.Sprintf("%s %s %s %s. ",
				subjects[rng.Intn(len(subjects))],
				verbs[rng.Intn(len(verbs))],
				objects[rng.Intn(len(objects))],
				tails[rng.Intn(len(tails))])
		}
		docs[i] = corpusDoc{id: fmt.Sprintf("doc-%05d", i), text: text}
	}
	return docs
}

var goldenQueries = []string{
	`"new ceo"`,
	"IBM Daksh",
	"acquired",
	`"growth strategy" revenue`,
	"merger quarterly",
	"2004",
	`"joint venture"`,
	"Acme announced",
}

// TestShardedMatchesSingleShard pins the core correctness property of
// the sharded engine: for every shard count, SearchQuery returns
// exactly the hits — order AND score — of the single-shard baseline.
func TestShardedMatchesSingleShard(t *testing.T) {
	docs := syntheticCorpus(3000, 42)
	baseline := NewWithOptions(Options{Shards: 1, CacheSize: -1})
	for _, d := range docs {
		baseline.Add(d.id, d.text)
	}
	for _, shards := range []int{2, 3, 4, 7, 16} {
		ix := NewWithOptions(Options{Shards: shards, CacheSize: -1})
		for _, d := range docs {
			ix.Add(d.id, d.text)
		}
		for _, q := range goldenQueries {
			for _, k := range []int{0, 1, 10, 100} {
				want := baseline.Search(q, k)
				got := ix.Search(q, k)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("shards=%d query=%q k=%d:\n got %v\nwant %v", shards, q, k, got, want)
				}
			}
		}
	}
}

// TestConcurrentBulkAddMatchesSequential loads the same corpus with
// many goroutines and verifies the resulting ranked output is identical
// to a sequential load.
func TestConcurrentBulkAddMatchesSequential(t *testing.T) {
	docs := syntheticCorpus(2000, 7)
	seq := NewWithOptions(Options{Shards: 4, CacheSize: -1})
	for _, d := range docs {
		seq.Add(d.id, d.text)
	}

	conc := NewWithOptions(Options{Shards: 4, CacheSize: -1})
	var wg sync.WaitGroup
	jobs := make(chan corpusDoc)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for d := range jobs {
				conc.Add(d.id, d.text)
			}
		}()
	}
	for _, d := range docs {
		jobs <- d
	}
	close(jobs)
	wg.Wait()

	if seq.Len() != conc.Len() {
		t.Fatalf("Len: sequential %d vs concurrent %d", seq.Len(), conc.Len())
	}
	for _, q := range goldenQueries {
		want := seq.Search(q, 20)
		got := conc.Search(q, 20)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %q: concurrent load diverged\n got %v\nwant %v", q, got, want)
		}
	}
}

// TestConcurrentAddAndSearch exercises Add racing SearchQuery and the
// co-occurrence readers under -race. Results are not asserted beyond
// basic sanity — the point is that no access is unsynchronized.
func TestConcurrentAddAndSearch(t *testing.T) {
	docs := syntheticCorpus(1500, 99)
	ix := New()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, d := range docs {
			ix.Add(d.id, d.text)
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := goldenQueries[(i+r)%len(goldenQueries)]
				for _, h := range ix.Search(q, 10) {
					if h.DocID == "" {
						t.Error("hit without DocID")
						return
					}
				}
				ix.DocFreq("merger")
				ix.CoNearFreq("revenue", "growth", 5)
				ix.Len()
			}
		}(r)
	}
	wg.Wait()
	if ix.Len() != len(docs) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(docs))
	}
}

// TestCacheInvalidationOnAdd pins the cache contract: a cached result
// must not survive a mutation of the index.
func TestCacheInvalidationOnAdd(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 4, CacheSize: 64})
	ix.Add("d1", "Acme appointed a new CEO")
	if n := len(ix.Search(`"new ceo"`, 0)); n != 1 {
		t.Fatalf("first search: %d hits, want 1", n)
	}
	// Warm hit.
	if n := len(ix.Search(`"new ceo"`, 0)); n != 1 {
		t.Fatalf("cached search: %d hits, want 1", n)
	}
	ix.Add("d2", "Widget Corp also has a new CEO now")
	hits := ix.Search(`"new ceo"`, 0)
	if len(hits) != 2 {
		t.Fatalf("post-Add search served stale cache: %d hits, want 2 (%v)", len(hits), hits)
	}
}

// TestCacheHitIdenticalResults verifies that a cache hit returns the
// same hits as the cold query, and that callers can mutate the returned
// slice without corrupting the cache.
func TestCacheHitIdenticalResults(t *testing.T) {
	docs := syntheticCorpus(500, 3)
	ix := NewWithOptions(Options{Shards: 4, CacheSize: 64})
	for _, d := range docs {
		ix.Add(d.id, d.text)
	}
	cold := ix.Search("acquired merger", 25)
	warm := ix.Search("acquired merger", 25)
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("cache hit diverged:\ncold %v\nwarm %v", cold, warm)
	}
	if len(warm) > 1 {
		warm[0], warm[1] = warm[1], warm[0] // caller mutates its copy
		again := ix.Search("acquired merger", 25)
		if !reflect.DeepEqual(cold, again) {
			t.Fatal("caller mutation leaked into the cache")
		}
	}
}

// TestCacheEviction fills a tiny cache past capacity and checks the LRU
// bound holds.
func TestCacheEviction(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 2, CacheSize: 4})
	docs := syntheticCorpus(200, 11)
	for _, d := range docs {
		ix.Add(d.id, d.text)
	}
	queries := []string{"acquired", "merger", "revenue", "ceo", "quarterly", "venture", "leadership"}
	for _, q := range queries {
		ix.Search(q, 5)
	}
	if got := ix.IndexStats().CacheEntries; got > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", got)
	}
}

// TestCacheDisabled verifies CacheSize < 0 turns caching off entirely.
func TestCacheDisabled(t *testing.T) {
	ix := NewWithOptions(Options{Shards: 2, CacheSize: -1})
	ix.Add("d1", "merger announced")
	ix.Search("merger", 0)
	ix.Search("merger", 0)
	if got := ix.IndexStats().CacheEntries; got != 0 {
		t.Fatalf("disabled cache holds %d entries", got)
	}
}

// TestCacheKeyNormalization: queries differing only in bare-term order
// share one cache entry; phrase-internal order must NOT be conflated.
func TestCacheKeyNormalization(t *testing.T) {
	a := cacheKey(ParseQuery("IBM Daksh"), 10)
	b := cacheKey(ParseQuery("Daksh IBM"), 10)
	if a != b {
		t.Errorf("term order changed the key: %q vs %q", a, b)
	}
	c := cacheKey(ParseQuery(`"new ceo"`), 10)
	d := cacheKey(ParseQuery(`"ceo new"`), 10)
	if c == d {
		t.Error("phrase-internal order must be significant")
	}
	e := cacheKey(ParseQuery("IBM Daksh"), 20)
	if a == e {
		t.Error("k must be part of the key")
	}
}

// TestTopKMatchesFullSort cross-checks the bounded-heap merge against a
// plain sort for random hit sets.
func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		hits := make([]Hit, n)
		for i := range hits {
			hits[i] = Hit{DocID: fmt.Sprintf("d%04d", i), Score: float64(rng.Intn(20)) / 3}
		}
		k := rng.Intn(n + 10)
		merger := newTopK(k)
		for _, h := range hits {
			merger.push(h)
		}
		got := merger.results()

		full := newTopK(0)
		for _, h := range hits {
			full.push(h)
		}
		want := full.results()
		if k > 0 && len(want) > k {
			want = want[:k]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d:\n got %v\nwant %v", trial, k, got, want)
		}
	}
}
