package index

import "sort"

// hitBetter is the ranking order: higher score first, DocID ascending as
// the deterministic tie-break. It is the single comparator shared by the
// bounded heap and the final sort, so top-k selection and full sorting
// agree exactly.
func hitBetter(a, b Hit) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.DocID < b.DocID
}

// topK selects the k best hits (all of them when k <= 0) in ranking
// order. For bounded k it keeps a min-heap of the current best k — the
// root is the worst retained hit, so each additional candidate costs
// O(log k) and merging S shards' results never materializes more than
// k+1 entries beyond the inputs.
type topK struct {
	k    int
	heap []Hit // min-heap by hitBetter (root = worst retained)
	all  []Hit // used when k <= 0
}

func newTopK(k int) *topK { return &topK{k: k} }

func (t *topK) push(h Hit) {
	if t.k <= 0 {
		t.all = append(t.all, h)
		return
	}
	if len(t.heap) < t.k {
		t.heap = append(t.heap, h)
		t.up(len(t.heap) - 1)
		return
	}
	// Full: replace the root iff h ranks strictly better than the worst.
	if hitBetter(h, t.heap[0]) {
		t.heap[0] = h
		t.down(0)
	}
}

// results returns the retained hits in ranking order.
func (t *topK) results() []Hit {
	if t.k <= 0 {
		if len(t.all) == 0 {
			return nil
		}
		sort.Slice(t.all, func(i, j int) bool { return hitBetter(t.all[i], t.all[j]) })
		return t.all
	}
	if len(t.heap) == 0 {
		return nil
	}
	out := append([]Hit(nil), t.heap...)
	sort.Slice(out, func(i, j int) bool { return hitBetter(out[i], out[j]) })
	return out
}

// up restores the heap property from leaf i toward the root. The heap
// is ordered by "worse ranks closer to the root", i.e. parent must NOT
// rank better than child.
func (t *topK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !hitBetter(t.heap[parent], t.heap[i]) {
			break
		}
		t.heap[parent], t.heap[i] = t.heap[i], t.heap[parent]
		i = parent
	}
}

// down restores the heap property from the root toward the leaves.
func (t *topK) down(i int) {
	n := len(t.heap)
	for {
		worst := i
		if l := 2*i + 1; l < n && hitBetter(t.heap[worst], t.heap[l]) {
			worst = l
		}
		if r := 2*i + 2; r < n && hitBetter(t.heap[worst], t.heap[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.heap[i], t.heap[worst] = t.heap[worst], t.heap[i]
		i = worst
	}
}
