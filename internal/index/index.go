// Package index implements the inverted index and ranking that serve as
// ETAP's search engine substrate. The paper's training-data generation
// queries Google with "smart queries" like "new ceo" or "IBM Daksh"
// (Section 3.3.1); this index provides the same capability over the
// synthetic web: positional postings, BM25 ranking, quoted-phrase and
// conjunctive queries.
package index

import (
	"math"
	"sort"
	"strings"

	"etap/internal/obs"
	"etap/internal/textproc"
)

// Search traffic reports into the process-wide registry — the search
// substrate serves every smart query, so postings volume is the first
// place training-cost regressions show up.
var (
	mQueries = obs.Default.Counter("etap_index_queries_total",
		"Search queries served by the inverted index.")
	mPostings = obs.Default.Counter("etap_index_postings_scanned_total",
		"Postings-list entries touched while resolving queries.")
)

// Posting records the positions of one term in one document.
type Posting struct {
	Doc       int32
	Positions []int32
}

// Hit is one ranked search result.
type Hit struct {
	DocID string
	Score float64
}

// Index is a positional inverted index over added documents. It is not
// safe for concurrent mutation; build first, then search freely.
type Index struct {
	ids      []string
	byID     map[string]int32
	postings map[string][]Posting
	docLen   []float64
	totalLen float64
}

// New returns an empty index.
func New() *Index {
	return &Index{
		byID:     make(map[string]int32),
		postings: make(map[string][]Posting),
	}
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.ids) }

// terms normalizes text into index terms: lower-cased stemmed word
// tokens plus number tokens (so queries like "Q4 2004" work).
func terms(text string) []string {
	toks := textproc.Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case textproc.KindWord:
			out = append(out, textproc.Stem(t.Lower()))
		case textproc.KindNumber:
			out = append(out, t.Text)
		}
	}
	return out
}

// Add indexes a document. Adding the same docID twice panics: the index
// has no delete path and silent double-indexing would corrupt scores.
func (ix *Index) Add(docID, text string) {
	if _, dup := ix.byID[docID]; dup {
		panic("index: duplicate document " + docID)
	}
	doc := int32(len(ix.ids))
	ix.ids = append(ix.ids, docID)
	ix.byID[docID] = doc

	ts := terms(text)
	ix.docLen = append(ix.docLen, float64(len(ts)))
	ix.totalLen += float64(len(ts))

	seenAt := map[string][]int32{}
	for pos, term := range ts {
		seenAt[term] = append(seenAt[term], int32(pos))
	}
	for term, positions := range seenAt {
		ix.postings[term] = append(ix.postings[term], Posting{Doc: doc, Positions: positions})
	}
}

// BM25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

func (ix *Index) idf(df int) float64 {
	n := float64(ix.Len())
	return math.Log(1 + (n-float64(df)+0.5)/(float64(df)+0.5))
}

// Query is a parsed search query: required phrases (quoted in the input)
// and required terms. All parts must match (conjunctive semantics — a
// smart query is precision-oriented).
type Query struct {
	Phrases [][]string
	Terms   []string
}

// ParseQuery splits a query string into quoted phrases and bare terms,
// normalizing both like document text.
func ParseQuery(q string) Query {
	var out Query
	for {
		start := strings.IndexByte(q, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(q[start+1:], '"')
		if end < 0 {
			break
		}
		phrase := q[start+1 : start+1+end]
		if ts := terms(phrase); len(ts) > 0 {
			out.Phrases = append(out.Phrases, ts)
		}
		q = q[:start] + " " + q[start+1+end+1:]
	}
	out.Terms = terms(q)
	return out
}

// Search ranks documents matching the query and returns the top k (all
// matches when k <= 0). Multi-token phrases require adjacency; terms and
// phrases combine conjunctively; ranking is BM25 over all query tokens.
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchQuery(ParseQuery(query), k)
}

// SearchQuery is Search over a pre-parsed query.
func (ix *Index) SearchQuery(q Query, k int) []Hit {
	mQueries.Inc()
	required := make([][]Posting, 0, len(q.Terms)+len(q.Phrases))
	// Single-token phrases degrade to terms.
	allTerms := append([]string(nil), q.Terms...)
	var phrases [][]string
	for _, p := range q.Phrases {
		if len(p) == 1 {
			allTerms = append(allTerms, p[0])
		} else {
			phrases = append(phrases, p)
			allTerms = append(allTerms, p...)
		}
	}
	for _, t := range allTerms {
		pl, ok := ix.postings[t]
		if !ok {
			return nil // conjunctive: a missing term empties the result
		}
		mPostings.Add(uint64(len(pl)))
		required = append(required, pl)
	}
	if len(required) == 0 {
		return nil
	}

	// Intersect candidate doc sets.
	candidates := docSet(required[0])
	for _, pl := range required[1:] {
		next := docSet(pl)
		for d := range candidates {
			if !next[d] {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// Phrase filter.
	for _, p := range phrases {
		for d := range candidates {
			if !ix.phraseIn(p, d) {
				delete(candidates, d)
			}
		}
		if len(candidates) == 0 {
			return nil
		}
	}

	// BM25 over the distinct query tokens.
	distinct := map[string]bool{}
	for _, t := range allTerms {
		distinct[t] = true
	}
	avgLen := ix.totalLen / math.Max(1, float64(ix.Len()))
	hits := make([]Hit, 0, len(candidates))
	for d := range candidates {
		score := 0.0
		for t := range distinct {
			pl := ix.postings[t]
			idx := sort.Search(len(pl), func(i int) bool { return pl[i].Doc >= d })
			if idx >= len(pl) || pl[idx].Doc != d {
				continue
			}
			tf := float64(len(pl[idx].Positions))
			den := tf + bm25K1*(1-bm25B+bm25B*ix.docLen[d]/avgLen)
			score += ix.idf(len(pl)) * tf * (bm25K1 + 1) / den
		}
		hits = append(hits, Hit{DocID: ix.ids[d], Score: score})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].DocID < hits[j].DocID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// phraseIn reports whether the phrase occurs contiguously in doc d.
func (ix *Index) phraseIn(phrase []string, d int32) bool {
	// Gather position lists for each phrase token in doc d.
	lists := make([][]int32, len(phrase))
	for i, t := range phrase {
		pl := ix.postings[t]
		idx := sort.Search(len(pl), func(j int) bool { return pl[j].Doc >= d })
		if idx >= len(pl) || pl[idx].Doc != d {
			return false
		}
		lists[i] = pl[idx].Positions
	}
	// For each start position of token 0, check the chain.
	for _, p0 := range lists[0] {
		ok := true
		for i := 1; i < len(lists); i++ {
			if !contains32(lists[i], p0+int32(i)) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func contains32(sorted []int32, v int32) bool {
	i := sort.Search(len(sorted), func(j int) bool { return sorted[j] >= v })
	return i < len(sorted) && sorted[i] == v
}

func docSet(pl []Posting) map[int32]bool {
	out := make(map[int32]bool, len(pl))
	for _, p := range pl {
		out[p.Doc] = true
	}
	return out
}

// DocFreq returns the document frequency of a term (normalized like
// document text), used by the PMI-IR lexicon induction.
func (ix *Index) DocFreq(term string) int {
	ts := terms(term)
	if len(ts) == 0 {
		return 0
	}
	return len(ix.postings[ts[0]])
}

// CoDocFreq returns the number of documents containing both terms —
// whole-document co-occurrence.
func (ix *Index) CoDocFreq(a, b string) int {
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	da := docSet(ix.postings[ta[0]])
	n := 0
	for _, p := range ix.postings[tb[0]] {
		if da[p.Doc] {
			n++
		}
	}
	return n
}

// CoNearFreq returns the number of documents where the two terms occur
// within `window` token positions of each other — the NEAR operator of
// Turney's PMI-IR. window <= 0 degrades to CoDocFreq.
func (ix *Index) CoNearFreq(a, b string, window int) int {
	if window <= 0 {
		return ix.CoDocFreq(a, b)
	}
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	pa := ix.postings[ta[0]]
	pb := ix.postings[tb[0]]
	n := 0
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		switch {
		case pa[i].Doc < pb[j].Doc:
			i++
		case pa[i].Doc > pb[j].Doc:
			j++
		default:
			if positionsNear(pa[i].Positions, pb[j].Positions, int32(window)) {
				n++
			}
			i++
			j++
		}
	}
	return n
}

// positionsNear reports whether two sorted position lists have a pair
// within the window.
func positionsNear(a, b []int32, window int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		if d <= window {
			return true
		}
		if a[i] < b[j] {
			i++
		} else {
			j++
		}
	}
	return false
}
