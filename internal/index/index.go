// Package index implements the sharded inverted index and ranking that
// serve as ETAP's search engine substrate. The paper's training-data
// generation queries Google with "smart queries" like "new ceo" or "IBM
// Daksh" (Section 3.3.1); this index provides the same capability over
// the synthetic web: positional postings, BM25 ranking, quoted-phrase
// and conjunctive queries.
//
// # Sharding
//
// The index is split into N shards (Options.Shards, default
// GOMAXPROCS). A document is routed to a shard by a hash of its ID and
// lives there entirely, so matching and scoring are shard-local;
// corpus-wide statistics (document count, average length, per-term
// document frequency) are aggregated before scoring, which keeps ranked
// results — order and score — bit-identical across shard counts.
// Add takes only the owning shard's write lock, so concurrent bulk
// loading scales across cores; SearchQuery fans out across shards in
// parallel and merges the per-shard results through a bounded top-k
// heap.
//
// # Query cache
//
// An LRU cache (Options.CacheSize, default DefaultCacheSize) keyed on
// the normalized query memoizes ranked results. Every Add bumps the
// index generation, which invalidates all cached entries at once —
// smart-query workloads are many small repeated queries over a corpus
// that mutates rarely, exactly the shape an LRU absorbs.
package index

import (
	"hash/maphash"
	"runtime"
	"strings"
	"sync/atomic"

	"etap/internal/obs"
	"etap/internal/textproc"
)

// Search traffic reports into the process-wide registry — the search
// substrate serves every smart query, so postings volume and cache
// efficiency are the first places training-cost regressions show up.
var (
	mQueries = obs.Default.Counter("etap_index_queries_total",
		"Search queries served by the inverted index.")
	mPostings = obs.Default.Counter("etap_index_postings_scanned_total",
		"Postings-list entries touched while resolving queries.")
	mCacheHits = obs.Default.Counter("etap_index_cache_hits_total",
		"Queries answered from the result cache.")
	mCacheMisses = obs.Default.Counter("etap_index_cache_misses_total",
		"Queries that had to be resolved against the shards.")
	mCacheEvictions = obs.Default.Counter("etap_index_cache_evictions_total",
		"Cache entries evicted by the LRU capacity bound.")
	mCacheEntries = obs.Default.Gauge("etap_index_cache_entries",
		"Live entries in the query-result cache.")
	mFanout = obs.Default.Histogram("etap_index_fanout_duration_seconds",
		"Wall time of the per-query parallel fan-out across shards.", nil)
)

// Posting records the positions of one term in one document. Doc is an
// index into the owning shard's document table (shard-local, not
// global).
type Posting struct {
	Doc       int32
	Positions []int32
}

// Hit is one ranked search result.
type Hit struct {
	DocID string
	Score float64
}

// Options configures a new index.
type Options struct {
	// Shards is the number of index shards; 0 means GOMAXPROCS, and
	// values are clamped to at least 1. More shards increase bulk-load
	// and query fan-out parallelism; ranked results are identical for
	// any shard count.
	Shards int
	// CacheSize is the query-result cache capacity in entries; 0 means
	// DefaultCacheSize, negative disables caching.
	CacheSize int
	// RouteSeed, when non-zero, replaces the per-process random shard
	// routing with a deterministic hash seeded by this value, so the
	// same documents land on the same shards across process restarts.
	// Ranked results are identical either way; a fixed seed matters
	// only when shard placement itself must be reproducible (debugging
	// a specific shard, comparing shard-level stats across runs).
	RouteSeed uint64
}

// Index is a positional inverted index over added documents, sharded by
// document ID. Add and the query methods are safe for concurrent use —
// build with concurrent Adds, search from any number of goroutines. A
// search concurrent with Adds sees some consistent prefix of the
// documents added so far.
type Index struct {
	shards []*shard
	route  func(docID string) uint64
	gen    atomic.Uint64 // bumped on every Add; versions cache entries
	cache  *queryCache   // nil when disabled
}

// New returns an empty index with default options (GOMAXPROCS shards,
// DefaultCacheSize query cache).
func New() *Index { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty index configured by o.
func NewWithOptions(o Options) *Index {
	n := o.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	ix := &Index{shards: make([]*shard, n), route: routeFunc(o.RouteSeed)}
	for i := range ix.shards {
		ix.shards[i] = newShard()
	}
	switch {
	case o.CacheSize > 0:
		ix.cache = newQueryCache(o.CacheSize)
	case o.CacheSize == 0:
		ix.cache = newQueryCache(DefaultCacheSize)
	}
	return ix
}

// Shards returns the shard count.
func (ix *Index) Shards() int { return len(ix.shards) }

// Len returns the number of indexed documents.
func (ix *Index) Len() int {
	n := 0
	for _, s := range ix.shards {
		s.mu.RLock()
		n += len(s.ids)
		s.mu.RUnlock()
	}
	return n
}

// routeFunc builds the docID → hash routing function. Seed 0 keeps the
// historical behavior — a fresh random maphash seed per index, which is
// fast and well-mixed but differs between processes. A non-zero seed
// selects a seeded FNV-1a hash with a splitmix64 finalizer instead, so
// shard placement reproduces exactly across restarts.
func routeFunc(seed uint64) func(string) uint64 {
	if seed == 0 {
		//etaplint:ignore determinism -- sanctioned site: random per-process shard routing is the documented default; RouteSeed opts into the reproducible path
		s := maphash.MakeSeed()
		return func(docID string) uint64 { return maphash.String(s, docID) }
	}
	return func(docID string) uint64 {
		// FNV-1a over the ID, seed-perturbed, then finalized with
		// splitmix64 so low-entropy IDs still spread across shards.
		h := uint64(14695981039346656037)
		for i := 0; i < len(docID); i++ {
			h ^= uint64(docID[i])
			h *= 1099511628211
		}
		h ^= seed
		h ^= h >> 30
		h *= 0xbf58476d1ce4e9b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
		return h
	}
}

// shardFor routes a document ID to its owning shard.
func (ix *Index) shardFor(docID string) *shard {
	if len(ix.shards) == 1 {
		return ix.shards[0]
	}
	return ix.shards[ix.route(docID)%uint64(len(ix.shards))]
}

// terms normalizes text into index terms: lower-cased stemmed word
// tokens plus number tokens (so queries like "Q4 2004" work).
func terms(text string) []string {
	toks := textproc.Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		switch t.Kind {
		case textproc.KindWord:
			out = append(out, textproc.Stem(t.Lower()))
		case textproc.KindNumber:
			out = append(out, t.Text)
		}
	}
	return out
}

// Add indexes a document. It is safe to call concurrently: tokenization
// runs outside any lock and only the owning shard's write lock is
// taken, so bulk loading parallelizes across shards. Adding the same
// docID twice panics: the index has no delete path and silent
// double-indexing would corrupt scores. Every Add invalidates the query
// cache (by advancing the index generation).
func (ix *Index) Add(docID, text string) {
	ts := terms(text)
	ix.shardFor(docID).add(docID, ts)
	ix.gen.Add(1)
}

// Has reports whether docID is already indexed. It is safe for
// concurrent use and lets idempotent loaders (a web re-opened over a
// persistent engine, replayed ingest streams) skip documents instead
// of tripping the duplicate-Add panic.
func (ix *Index) Has(docID string) bool {
	return ix.shardFor(docID).has(docID)
}

// BM25 parameters (standard defaults).
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// Query is a parsed search query: required phrases (quoted in the input)
// and required terms. All parts must match (conjunctive semantics — a
// smart query is precision-oriented).
type Query struct {
	Phrases [][]string
	Terms   []string
}

// ParseQuery splits a query string into quoted phrases and bare terms,
// normalizing both like document text. An unterminated quote is not a
// phrase: its quote character is dropped and the tail parses as plain
// terms.
func ParseQuery(q string) Query {
	var out Query
	for {
		start := strings.IndexByte(q, '"')
		if start < 0 {
			break
		}
		end := strings.IndexByte(q[start+1:], '"')
		if end < 0 {
			// Unterminated quote: strip it and fall through to plain
			// term parsing instead of silently dropping the tail.
			q = q[:start] + " " + q[start+1:]
			break
		}
		phrase := q[start+1 : start+1+end]
		if ts := terms(phrase); len(ts) > 0 {
			out.Phrases = append(out.Phrases, ts)
		}
		q = q[:start] + " " + q[start+1+end+1:]
	}
	out.Terms = terms(q)
	return out
}

// Search ranks documents matching the query and returns the top k (all
// matches when k <= 0). Multi-token phrases require adjacency; terms and
// phrases combine conjunctively; ranking is BM25 over all query tokens.
//
//etaplint:ignore context-plumbing -- purely in-memory lookup: no I/O to cancel, and a ctx parameter would suggest otherwise
func (ix *Index) Search(query string, k int) []Hit {
	return ix.SearchQuery(ParseQuery(query), k)
}

// SearchQuery is Search over a pre-parsed query: cache lookup first,
// then a parallel fan-out across shards merged through a bounded top-k
// heap. Results are identical — order and score — for any shard count.
//
//etaplint:ignore context-plumbing -- purely in-memory lookup: no I/O to cancel, and a ctx parameter would suggest otherwise
func (ix *Index) SearchQuery(q Query, k int) []Hit {
	mQueries.Inc()

	allTerms, phrases := flattenQuery(q)
	if len(allTerms) == 0 {
		return nil
	}

	var key string
	gen := ix.gen.Load()
	if ix.cache != nil {
		key = cacheKey(q, k)
		if hits, ok := ix.cache.get(key, gen); ok {
			return hits
		}
	}

	hits := resolveParts(ix.parts(), allTerms, phrases, k, true)
	if ix.cache != nil {
		// Versioned under the generation read before resolving: if an
		// Add raced the search, the entry is already stale and the next
		// get drops it.
		ix.cache.put(key, gen, hits)
	}
	return hits
}

// parts adapts the shard slice to the engine-neutral part interface the
// shared resolver operates on.
func (ix *Index) parts() []part {
	parts := make([]part, len(ix.shards))
	for i, s := range ix.shards {
		parts[i] = s
	}
	return parts
}

// DocFreq returns the document frequency of a term (normalized like
// document text), used by the PMI-IR lexicon induction.
func (ix *Index) DocFreq(term string) int {
	ts := terms(term)
	if len(ts) == 0 {
		return 0
	}
	n := 0
	for _, s := range ix.shards {
		n += s.docFreq(ts[0])
	}
	return n
}

// CoDocFreq returns the number of documents containing both terms —
// whole-document co-occurrence. Documents never span shards, so the
// corpus-wide count is the sum of shard-local counts.
func (ix *Index) CoDocFreq(a, b string) int {
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	n := 0
	for _, s := range ix.shards {
		n += s.coDocFreq(ta[0], tb[0])
	}
	return n
}

// CoNearFreq returns the number of documents where the two terms occur
// within `window` token positions of each other — the NEAR operator of
// Turney's PMI-IR. window <= 0 degrades to CoDocFreq.
func (ix *Index) CoNearFreq(a, b string, window int) int {
	if window <= 0 {
		return ix.CoDocFreq(a, b)
	}
	ta, tb := terms(a), terms(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	n := 0
	for _, s := range ix.shards {
		n += s.coNearFreq(ta[0], tb[0], int32(window))
	}
	return n
}

// Stats is a point-in-time summary of the index, for operational
// inspection (corpusgen -index, tests, logs).
type Stats struct {
	// Docs is the number of indexed documents.
	Docs int
	// Shards is the configured shard count.
	Shards int
	// Terms is the total number of term→postings entries summed across
	// shards (a term present in several shards counts once per shard).
	Terms int
	// Postings is the total number of (term, document) postings.
	Postings int
	// CacheEntries is the number of live query-cache entries; zero when
	// the cache is disabled.
	CacheEntries int
	// Segments is the number of committed on-disk segments; always zero
	// for the in-RAM engine.
	Segments int
}

// IndexStats returns current index statistics.
func (ix *Index) IndexStats() Stats {
	st := Stats{Shards: len(ix.shards)}
	for _, s := range ix.shards {
		d, t, p := s.size()
		st.Docs += d
		st.Terms += t
		st.Postings += p
	}
	if ix.cache != nil {
		st.CacheEntries = ix.cache.len()
	}
	return st
}
