package index

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultCacheSize is the query-result cache capacity (entries) used
// when Options.CacheSize is zero. Smart-query workloads repeat a small
// set of precision-oriented queries many times, so even a modest cache
// absorbs most of the load.
const DefaultCacheSize = 512

// queryCache is an LRU map from normalized query keys to ranked hits.
// Entries carry the index generation they were computed at; Add bumps
// the generation, so every cached result is invalidated by the next
// mutation without the writer having to touch the cache at all.
//
// All methods are safe for concurrent use. The cache deliberately uses
// one plain mutex: entries are small, the critical sections are a map
// lookup plus a list splice, and the alternative (per-entry locks)
// costs more than it saves at DefaultCacheSize.
type queryCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	gen  uint64
	hits []Hit
}

func newQueryCache(capacity int) *queryCache {
	return &queryCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// get returns the cached hits for key if present and computed at the
// current generation. Stale entries (older generation) are dropped on
// sight. The returned slice is a copy; callers may truncate or reorder
// it freely.
func (c *queryCache) get(key string, gen uint64) ([]Hit, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		mCacheMisses.Inc()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen {
		// The index changed since this result was computed.
		c.ll.Remove(el)
		delete(c.items, key)
		mCacheEntries.Set(int64(len(c.items)))
		mCacheMisses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	mCacheHits.Inc()
	return append([]Hit(nil), e.hits...), true
}

// put stores hits for key at generation gen, evicting the least
// recently used entries beyond capacity.
func (c *queryCache) put(key string, gen uint64, hits []Hit) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.gen = gen
		e.hits = append([]Hit(nil), hits...)
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, gen: gen, hits: append([]Hit(nil), hits...)})
	c.items[key] = el
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
		mCacheEvictions.Inc()
	}
	mCacheEntries.Set(int64(len(c.items)))
}

// len returns the number of live entries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey renders a parsed query plus result bound k into a canonical
// string. Terms and phrases are sorted so queries that differ only in
// token order share an entry (conjunctive matching and BM25 scoring are
// both order-insensitive); phrase-internal order is preserved because
// adjacency is order-sensitive.
func cacheKey(q Query, k int) string {
	terms := append([]string(nil), q.Terms...)
	sort.Strings(terms)
	phrases := make([]string, len(q.Phrases))
	for i, p := range q.Phrases {
		phrases[i] = strings.Join(p, " ")
	}
	sort.Strings(phrases)
	var b strings.Builder
	b.WriteString("k=")
	b.WriteString(strconv.Itoa(k))
	for _, t := range terms {
		b.WriteString("\x00t:")
		b.WriteString(t)
	}
	for _, p := range phrases {
		b.WriteString("\x00p:")
		b.WriteString(p)
	}
	return b.String()
}
