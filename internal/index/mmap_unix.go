//go:build unix

package index

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// openSegmentData maps a committed segment file read-only. The file
// descriptor is closed immediately after mapping — the mapping keeps
// the inode alive, so a concurrent merge can unlink the path while
// searches still read the old bytes (the same immutability trick the
// manifest commit protocol relies on, see STORAGE.md §5).
func openSegmentData(path string) (segmentData, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, 0, fmt.Errorf("segment %s is empty", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, 0, fmt.Errorf("mmap %s: %w", path, err)
	}
	mMmapBytes.Add(size)
	return &mmapReader{data: data}, size, nil
}

// mmapReader serves ReadAt straight from a read-only mapping.
type mmapReader struct {
	data []byte
}

// ReadAt implements io.ReaderAt over the mapping.
func (m *mmapReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("mmap read at %d outside segment of %d bytes", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close unmaps the segment.
func (m *mmapReader) Close() error {
	if m.data == nil {
		return nil
	}
	mMmapBytes.Add(-int64(len(m.data)))
	err := syscall.Munmap(m.data)
	m.data = nil
	return err
}
