package index

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildSegmentIndex opens a segment engine in a test temp dir, loads
// docs, and registers cleanup.
func buildSegmentIndex(t *testing.T, o SegmentOptions, docs []corpusDoc) *SegmentIndex {
	t.Helper()
	if o.Dir == "" {
		o.Dir = t.TempDir()
	}
	si, err := OpenSegmentIndex(o)
	if err != nil {
		t.Fatalf("OpenSegmentIndex: %v", err)
	}
	t.Cleanup(func() { si.Close() })
	for _, d := range docs {
		si.Add(d.id, d.text)
	}
	return si
}

// TestSegmentEngineMatchesInRAMGolden pins the engine-equivalence
// property: for every writer count and flush size — including
// configurations that force many flushes and background merges — the
// segment engine returns bit-identical ranked hits (order AND score)
// to the single-shard in-RAM engine over the same corpus.
func TestSegmentEngineMatchesInRAMGolden(t *testing.T) {
	n := 50000
	if testing.Short() {
		n = 4000
	}
	docs := syntheticCorpus(n, 42)

	baseline := NewWithOptions(Options{Shards: 1, CacheSize: -1})
	for _, d := range docs {
		baseline.Add(d.id, d.text)
	}
	type golden struct {
		q    string
		hits []Hit
	}
	goldens := make([]golden, 0, len(goldenQueries))
	for _, q := range goldenQueries {
		goldens = append(goldens, golden{q: q, hits: baseline.Search(q, 25)})
	}

	for _, cfg := range []SegmentOptions{
		{Writers: 1, FlushDocs: 1 << 30},                // everything stays in one memtable
		{Writers: 1, FlushDocs: 500},                    // many flushes, tiered merges
		{Writers: 2, FlushDocs: 700, MergeFactor: 2},    // aggressive merging
		{Writers: 4, FlushDocs: 997, RouteSeed: 0xe7a9}, // deterministic routing
		{Writers: 8, FlushDocs: 256, MergeFactor: 3, CacheSize: -1},
	} {
		cfg := cfg
		name := fmt.Sprintf("w%d_f%d_m%d", cfg.Writers, cfg.FlushDocs, cfg.MergeFactor)
		t.Run(name, func(t *testing.T) {
			si := buildSegmentIndex(t, cfg, docs)
			if si.Len() != len(docs) {
				t.Fatalf("Len = %d, want %d", si.Len(), len(docs))
			}
			for _, g := range goldens {
				got := si.Search(g.q, 25)
				if !reflect.DeepEqual(got, g.hits) {
					t.Fatalf("query %q: segment hits diverge from in-RAM golden\nwant %v\ngot  %v", g.q, g.hits, got)
				}
			}
			if err := si.Err(); err != nil {
				t.Fatalf("background error: %v", err)
			}
		})
	}
}

// TestSegmentReopenServesCommitted pins the restart contract: Close
// flushes everything, and a reopened engine serves the full corpus —
// golden-identical hits, duplicate detection intact — without
// re-adding a single document.
func TestSegmentReopenServesCommitted(t *testing.T) {
	docs := syntheticCorpus(3000, 43)
	dir := t.TempDir()

	first, err := OpenSegmentIndex(SegmentOptions{Dir: dir, Writers: 3, FlushDocs: 250, MergeFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range docs {
		first.Add(d.id, d.text)
	}
	var want [][]Hit
	for _, q := range goldenQueries {
		want = append(want, first.Search(q, 20))
	}
	if err := first.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Reopen with a different writer topology — lane assignment must
	// not affect recovery or results.
	second, err := OpenSegmentIndex(SegmentOptions{Dir: dir, Writers: 5, FlushDocs: 250})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer second.Close()

	if second.Len() != len(docs) {
		t.Fatalf("reopened Len = %d, want %d", second.Len(), len(docs))
	}
	st := second.SegmentStats()
	if st.MemtableDocs != 0 {
		t.Fatalf("reopened engine holds %d memtable docs; everything should be committed", st.MemtableDocs)
	}
	if st.Segments == 0 || st.Generation == 0 {
		t.Fatalf("reopened engine reports no committed state: %+v", st)
	}
	for i, q := range goldenQueries {
		got := second.Search(q, 20)
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("query %q diverges after reopen", q)
		}
	}
	// Duplicate detection must span the restart.
	if !second.Has(docs[0].id) {
		t.Fatalf("Has(%q) = false after reopen", docs[0].id)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("re-adding a recovered docID did not panic")
			}
		}()
		second.Add(docs[0].id, "duplicate")
	}()
	// And the reopened engine must accept new documents.
	second.Add("doc-new", "fresh document after restart")
	if !second.Has("doc-new") {
		t.Fatal("Has(doc-new) = false")
	}
}

// TestSegmentMergeCompacts verifies the tiered merger actually runs:
// with mergeFactor 2 and many small flushes, the committed segment
// count must drop well below the flush count, and every merge must
// preserve the corpus.
func TestSegmentMergeCompacts(t *testing.T) {
	docs := syntheticCorpus(4000, 44)
	si := buildSegmentIndex(t, SegmentOptions{Dir: t.TempDir(), Writers: 1, FlushDocs: 100, MergeFactor: 2}, docs)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := si.SegmentStats()
		// 4000 docs / 100-doc flushes = 40 flushes; a working factor-2
		// merger keeps the live count logarithmic.
		if st.Segments > 0 && st.Segments <= 12 && st.SegmentDocs+st.MemtableDocs == len(docs) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merger never compacted: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := si.Err(); err != nil {
		t.Fatalf("background error: %v", err)
	}
	if si.Len() != len(docs) {
		t.Fatalf("Len = %d after merges, want %d", si.Len(), len(docs))
	}
	// Retired segment files must eventually disappear from disk. A
	// merge mid-commit briefly has its output renamed into place before
	// the manifest references it, so poll until disk and manifest agree.
	for {
		ents, err := os.ReadDir(si.dir)
		if err != nil {
			t.Fatal(err)
		}
		var segFiles int
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), segmentSuffix) {
				segFiles++
			}
		}
		st := si.SegmentStats()
		if segFiles == st.Segments {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d segment files on disk, manifest commits %d", segFiles, st.Segments)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSegmentDocIDs checks the recovery-verification helper: every
// added ID, sorted, regardless of which part currently holds it.
func TestSegmentDocIDs(t *testing.T) {
	docs := syntheticCorpus(500, 45)
	si := buildSegmentIndex(t, SegmentOptions{Dir: t.TempDir(), Writers: 3, FlushDocs: 64}, docs)
	want := make([]string, len(docs))
	for i, d := range docs {
		want[i] = d.id
	}
	sort.Strings(want)
	if got := si.DocIDs(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DocIDs mismatch: %d ids, want %d", len(got), len(want))
	}
}

// TestSegmentCacheInvalidation mirrors the in-RAM cache contract: an
// Add between two identical queries must invalidate, while flushes and
// merges (which do not change results) must not prevent hits.
func TestSegmentCacheInvalidation(t *testing.T) {
	si := buildSegmentIndex(t, SegmentOptions{Dir: t.TempDir(), Writers: 1, FlushDocs: 4}, nil)
	si.Add("a", "acme acquired a new ceo")
	si.Add("b", "widget corp announced record revenue")

	first := si.Search("acme", 10)
	if _, ok := si.cache.get(cacheKey(ParseQuery("acme"), 10), si.gen.Load()); !ok {
		t.Fatal("query result was not cached")
	}
	second := si.Search("acme", 10)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("cached result differs")
	}

	si.Add("c", "acme acquired widget corp")
	third := si.Search("acme", 10)
	if len(third) != 2 {
		t.Fatalf("post-add query returned %d hits, want 2 (stale cache?)", len(third))
	}
}

// TestSegmentConcurrentIngestSearchMerge exercises ingest, search and
// background flush/merge simultaneously; run under -race this is the
// engine's data-race gate. Every search must see a consistent view —
// never an error, never a duplicate hit.
func TestSegmentConcurrentIngestSearchMerge(t *testing.T) {
	docs := syntheticCorpus(2500, 46)
	si, err := OpenSegmentIndex(SegmentOptions{Dir: t.TempDir(), Writers: 4, FlushDocs: 50, MergeFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(docs); i += 4 {
				si.Add(docs[i].id, docs[i].text)
			}
		}(g)
	}
	var searchWG sync.WaitGroup
	for g := 0; g < 3; g++ {
		searchWG.Add(1)
		go func(g int) {
			defer searchWG.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				hits := si.Search(goldenQueries[rng.Intn(len(goldenQueries))], 15)
				seen := make(map[string]bool, len(hits))
				for _, h := range hits {
					if seen[h.DocID] {
						t.Errorf("duplicate hit %q in one result set", h.DocID)
						return
					}
					seen[h.DocID] = true
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	searchWG.Wait()

	if si.Len() != len(docs) {
		t.Fatalf("Len = %d, want %d", si.Len(), len(docs))
	}
	if err := si.Err(); err != nil {
		t.Fatalf("background error: %v", err)
	}
}

// TestSegmentOptionsValidation covers defaulting and the required-Dir
// error.
func TestSegmentOptionsValidation(t *testing.T) {
	if _, err := OpenSegmentIndex(SegmentOptions{}); err == nil {
		t.Fatal("empty Dir accepted")
	}
	si, err := OpenSegmentIndex(SegmentOptions{Dir: filepath.Join(t.TempDir(), "nested", "idx"), MergeFactor: 1, Writers: -3})
	if err != nil {
		t.Fatal(err)
	}
	defer si.Close()
	if si.mergeFactor != 2 || len(si.writers) != 1 || si.flushDocs != DefaultFlushDocs {
		t.Fatalf("defaults not applied: mf=%d writers=%d flush=%d", si.mergeFactor, len(si.writers), si.flushDocs)
	}
}

// TestSegmentCloseIdempotent double-closes and reopens.
func TestSegmentCloseIdempotent(t *testing.T) {
	dir := t.TempDir()
	si, err := OpenSegmentIndex(SegmentOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	si.Add("x", "hello world")
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}
	if err := si.Close(); err != nil {
		t.Fatal(err)
	}
	again, err := OpenSegmentIndex(SegmentOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	if again.Len() != 1 || !again.Has("x") {
		t.Fatalf("reopen after double close lost data: len=%d", again.Len())
	}
}
