// Package pos implements a rule-based part-of-speech tagger in the spirit
// of QTag, the tagger ETAP uses for tokens that are not covered by a named
// entity category (Section 3.2.1). It combines a closed-class lexicon,
// suffix/morphology guesses and a contextual repair pass.
package pos

// Tag is a lower-case Penn-style part-of-speech tag, matching the
// convention in the paper's figures ("all named entity category names are
// capitalized while the part of speech category names are expressed in
// small letters").
type Tag string

// Fine-grained tags produced by the tagger.
const (
	TagNN  Tag = "nn"  // common noun, singular
	TagNNS Tag = "nns" // common noun, plural
	TagNP  Tag = "np"  // proper noun
	TagVB  Tag = "vb"  // verb, base form
	TagVBD Tag = "vbd" // verb, past tense
	TagVBG Tag = "vbg" // verb, gerund/present participle
	TagVBN Tag = "vbn" // verb, past participle
	TagVBZ Tag = "vbz" // verb, 3rd person singular present
	TagVBP Tag = "vbp" // verb, non-3rd person present
	TagMD  Tag = "md"  // modal
	TagJJ  Tag = "jj"  // adjective
	TagJJR Tag = "jjr" // adjective, comparative
	TagJJS Tag = "jjs" // adjective, superlative
	TagRB  Tag = "rb"  // adverb
	TagIN  Tag = "in"  // preposition / subordinating conjunction
	TagDT  Tag = "dt"  // determiner
	TagCC  Tag = "cc"  // coordinating conjunction
	TagCD  Tag = "cd"  // cardinal number
	TagPRP Tag = "prp" // personal pronoun
	TagPPS Tag = "pp$" // possessive pronoun
	TagTO  Tag = "to"  // "to"
	TagEX  Tag = "ex"  // existential "there"
	TagWDT Tag = "wdt" // wh-determiner
	TagWP  Tag = "wp"  // wh-pronoun
	TagWRB Tag = "wrb" // wh-adverb
	TagPOS Tag = "pos" // possessive marker 's
	TagUH  Tag = "uh"  // interjection
	TagSym Tag = "sym" // symbol
	TagPct Tag = "pct" // punctuation
)

// Coarse maps a fine-grained tag to the coarse category used by the
// paper's feature-abstraction analysis (Figures 3 and 4 plot vb, rb, nn,
// np, jj, in, dt, cd, ...).
func (t Tag) Coarse() Tag {
	switch t {
	case TagNN, TagNNS:
		return TagNN
	case TagVB, TagVBD, TagVBG, TagVBN, TagVBZ, TagVBP, TagMD:
		return TagVB
	case TagJJ, TagJJR, TagJJS:
		return TagJJ
	case TagPRP, TagPPS:
		return TagPRP
	default:
		return t
	}
}

// IsContent reports whether the tag belongs to an open (content-word)
// class. Per the paper's RIG observations, content classes keep their
// instance-valued representation; closed classes are uninformative either
// way.
func (t Tag) IsContent() bool {
	switch t.Coarse() {
	case TagNN, TagNP, TagVB, TagJJ, TagRB:
		return true
	}
	return false
}
