package pos

// lexicon maps lower-cased word forms to their most likely tag. It covers
// the closed classes exhaustively and the open-class vocabulary that
// matters for business news. Words absent from the lexicon fall through
// to the suffix rules in rules.go.
var lexicon = map[string]Tag{
	// determiners
	"the": TagDT, "a": TagDT, "an": TagDT, "this": TagDT, "that": TagDT,
	"these": TagDT, "those": TagDT, "each": TagDT, "every": TagDT,
	"some": TagDT, "any": TagDT, "no": TagDT, "all": TagDT, "both": TagDT,
	"another": TagDT, "either": TagDT, "neither": TagDT,

	// conjunctions
	"and": TagCC, "or": TagCC, "but": TagCC, "nor": TagCC, "yet": TagCC,
	"plus": TagCC,

	// prepositions / subordinators
	"of": TagIN, "in": TagIN, "on": TagIN, "at": TagIN, "by": TagIN,
	"for": TagIN, "with": TagIN, "from": TagIN, "into": TagIN,
	"about": TagIN, "after": TagIN, "before": TagIN, "during": TagIN,
	"between": TagIN, "through": TagIN, "over": TagIN, "under": TagIN,
	"against": TagIN, "among": TagIN, "within": TagIN, "without": TagIN,
	"since": TagIN, "until": TagIN, "despite": TagIN, "amid": TagIN,
	"as": TagIN, "if": TagIN, "because": TagIN, "while": TagIN,
	"although": TagIN, "though": TagIN, "whether": TagIN, "per": TagIN,
	"via": TagIN, "unless": TagIN, "toward": TagIN, "towards": TagIN,

	// pronouns
	"i": TagPRP, "you": TagPRP, "he": TagPRP, "she": TagPRP, "it": TagPRP,
	"we": TagPRP, "they": TagPRP, "me": TagPRP, "him": TagPRP,
	"them": TagPRP, "us": TagPRP, "himself": TagPRP, "herself": TagPRP,
	"itself": TagPRP, "themselves": TagPRP, "who": TagWP, "whom": TagWP,
	"my": TagPPS, "your": TagPPS, "his": TagPPS, "her": TagPPS,
	"its": TagPPS, "our": TagPPS, "their": TagPPS,
	"which": TagWDT, "whose": TagWDT, "what": TagWP,
	"when": TagWRB, "where": TagWRB, "why": TagWRB, "how": TagWRB,
	"there": TagEX,

	// modals and auxiliaries
	"will": TagMD, "would": TagMD, "shall": TagMD, "should": TagMD,
	"can": TagMD, "could": TagMD, "may": TagMD, "might": TagMD,
	"must": TagMD,
	"is":   TagVBZ, "are": TagVBP, "was": TagVBD, "were": TagVBD,
	"be": TagVB, "been": TagVBN, "being": TagVBG, "am": TagVBP,
	"has": TagVBZ, "have": TagVBP, "had": TagVBD, "having": TagVBG,
	"does": TagVBZ, "do": TagVBP, "did": TagVBD, "doing": TagVBG,
	"to": TagTO, "not": TagRB, "n't": TagRB,

	// high-frequency adverbs
	"also": TagRB, "now": TagRB, "then": TagRB, "here": TagRB,
	"very": TagRB, "too": TagRB, "just": TagRB, "only": TagRB,
	"again": TagRB, "soon": TagRB, "already": TagRB, "still": TagRB,
	"recently": TagRB, "sharply": TagRB, "significantly": TagRB,
	"strongly": TagRB, "steadily": TagRB, "roughly": TagRB,
	"approximately": TagRB, "nearly": TagRB,
	"up": TagRB, "down": TagRB, "well": TagRB, "even": TagRB,
	"more": TagRB, "most": TagRB, "less": TagRB, "least": TagRB,
	"earlier": TagRB, "later": TagRB, "today": TagRB, "yesterday": TagRB,
	"tomorrow": TagRB, "ago": TagRB, "once": TagRB, "abroad": TagRB,
	"respectively": TagRB, "meanwhile": TagRB, "however": TagRB,

	// business-news verbs (base forms; inflections derived by rules)
	"acquire": TagVB, "merge": TagVB, "buy": TagVB, "purchase": TagVB,
	"sell": TagVB, "announce": TagVB, "report": TagVB, "appoint": TagVB,
	"name": TagVB, "hire": TagVB, "join": TagVB, "resign": TagVB,
	"retire": TagVB, "replace": TagVB, "succeed": TagVB, "promote": TagVB,
	"grow": TagVB, "rise": TagVB, "fall": TagVB, "decline": TagVB,
	"increase": TagVB, "decrease": TagVB, "post": TagVB, "record": TagVB,
	"expand": TagVB, "plan": TagVB, "expect": TagVB, "say": TagVB,
	"agree": TagVB, "complete": TagVB, "close": TagVB, "approve": TagVB,
	"lead": TagVB, "serve": TagVB, "step": TagVB, "take": TagVB,
	"make": TagVB, "pay": TagVB, "raise": TagVB, "cut": TagVB,
	"launch": TagVB, "open": TagVB, "sign": TagVB, "win": TagVB,
	"beat": TagVB, "miss": TagVB, "exceed": TagVB, "deliver": TagVB,

	// irregular past forms
	"bought": TagVBD, "sold": TagVBD, "grew": TagVBD, "rose": TagVBD,
	"fell": TagVBD, "said": TagVBD, "took": TagVBD, "made": TagVBD,
	"paid": TagVBD, "led": TagVBD, "won": TagVBD, "left": TagVBD,
	"became": TagVBD, "began": TagVBD, "held": TagVBD, "met": TagVBD,
	"saw": TagVBD, "came": TagVBD, "went": TagVBD, "stepped": TagVBD,
	"beaten": TagVBN, "grown": TagVBN, "risen": TagVBN, "fallen": TagVBN,
	"taken": TagVBN, "given": TagVBN, "known": TagVBN, "shown": TagVBN,

	// business-news nouns
	"company": TagNN, "firm": TagNN, "merger": TagNN, "acquisition": TagNN,
	"deal": TagNN, "transaction": TagNN, "agreement": TagNN,
	"revenue": TagNN, "profit": TagNN, "loss": TagNN, "growth": TagNN,
	"quarter": TagNN, "year": TagNN, "month": TagNN, "week": TagNN,
	"market": TagNN, "share": TagNN, "stock": TagNN, "board": TagNN,
	"management": TagNN, "executive": TagNN, "officer": TagNN,
	"chief": TagNN, "president": TagNN, "chairman": TagNN,
	"director": TagNN, "manager": TagNN, "founder": TagNN,
	"sales": TagNNS, "earnings": TagNNS, "results": TagNNS,
	"analysts": TagNNS, "investors": TagNNS, "shares": TagNNS,
	"percent": TagNN, "percentage": TagNN, "billion": TagCD,
	"million": TagCD, "thousand": TagCD, "hundred": TagCD,
	"industry": TagNN, "sector": TagNN, "business": TagNN,
	"customer": TagNN, "product": TagNN, "service": TagNN,
	"strategy": TagNN, "integration": TagNN, "expansion": TagNN,
	"leadership": TagNN, "appointment": TagNN, "succession": TagNN,
	"tenure": TagNN, "role": TagNN, "position": TagNN, "career": TagNN,
}

func init() {
	// common adjectives
	for _, w := range []string{
		"new", "former", "current", "interim", "strong", "weak",
		"high", "low", "large", "small", "big", "major", "minor",
		"financial", "corporate", "strategic", "global", "annual",
		"quarterly", "fiscal", "net", "gross", "solid", "robust",
		"sharp", "severe", "significant", "substantial", "modest",
		"double-digit", "year-over-year", "worst", "best", "good",
		"bad", "senior", "junior", "executive_jj", "joint", "combined",
		"previous", "next", "last", "first", "second", "third",
		"fourth", "recent", "early", "late", "top", "key", "several",
		"many", "few", "other", "same", "such", "own", "due",
		"worldwide", "overall", "long-term", "short-term",
	} {
		if w == "executive_jj" {
			continue
		}
		lexicon[w] = TagJJ
	}
	lexicon["better"] = TagJJR
	lexicon["worse"] = TagJJR
	lexicon["higher"] = TagJJR
	lexicon["lower"] = TagJJR
	lexicon["larger"] = TagJJR
	lexicon["smaller"] = TagJJR
	lexicon["biggest"] = TagJJS
	lexicon["largest"] = TagJJS
	lexicon["highest"] = TagJJS
	lexicon["lowest"] = TagJJS

	// number words
	for _, w := range []string{
		"one", "two", "three", "four", "five", "six", "seven",
		"eight", "nine", "ten", "eleven", "twelve", "twenty",
		"thirty", "forty", "fifty", "sixty", "seventy", "eighty",
		"ninety", "dozen",
	} {
		lexicon[w] = TagCD
	}
}
