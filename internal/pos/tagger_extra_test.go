package pos

import (
	"testing"
	"testing/quick"

	"etap/internal/textproc"
)

// Business-news sentences with per-token expectations for the tags the
// feature abstraction relies on.
func TestTagBusinessSentences(t *testing.T) {
	cases := []struct {
		text string
		want map[string]Tag
	}{
		{
			"The merger creates the largest firm in the sector.",
			map[string]Tag{"merger": TagNN, "largest": TagJJS, "firm": TagNN, "sector": TagNN},
		},
		{
			"Shares fell sharply after the disappointing results.",
			map[string]Tag{"fell": TagVBD, "sharply": TagRB, "results": TagNNS},
		},
		{
			"Analysts expect revenue to rise steadily next year.",
			map[string]Tag{"expect": TagVB, "rise": TagVB, "steadily": TagRB, "next": TagJJ},
		},
		{
			"She previously served as treasurer of the group.",
			map[string]Tag{"previously": TagRB, "served": TagVBD, "of": TagIN},
		},
		{
			"The takeover was blocked by regulators.",
			map[string]Tag{"was": TagVBD, "blocked": TagVBN, "by": TagIN},
		},
	}
	for _, c := range cases {
		got := tagsOf(c.text)
		for w, want := range c.want {
			if got[w] != want {
				t.Errorf("%q in %q: got %q, want %q", w, c.text, got[w], want)
			}
		}
	}
}

func TestTagNominalizedGerund(t *testing.T) {
	got := tagsOf("The filing surprised the regulators.")
	if got["filing"] != TagNN {
		t.Errorf("filing after determiner: got %q, want nn", got["filing"])
	}
}

func TestTagParticipialModifier(t *testing.T) {
	got := tagsOf("The combined company employs thousands.")
	if got["combined"] != TagJJ {
		t.Errorf("combined before noun: got %q, want jj", got["combined"])
	}
}

func TestSuffixGuesses(t *testing.T) {
	cases := map[string]Tag{
		"flibbertization": TagNN,  // -ization
		"blortment":       TagNN,  // -ment
		"quaxity":         TagNN,  // -ity
		"snorfable":       TagJJ,  // -able
		"glimful":         TagJJ,  // -ful
		"vrentish":        TagNN,  // default
		"crandling":       TagVBG, // -ing
		"plorted":         TagVBD, // -ed
		"zintify":         TagVB,  // -ify
		"dunkest":         TagJJS, // -est
	}
	for w, want := range cases {
		if got := suffixGuess(w); got != want {
			t.Errorf("suffixGuess(%q) = %q, want %q", w, got, want)
		}
	}
}

// Property: the tagger is total and length-preserving over arbitrary
// input, and every produced tag is non-empty.
func TestTagPropertyTotal(t *testing.T) {
	f := func(s string) bool {
		toks := textproc.Tokenize(s)
		tagged := TagTokens(toks)
		if len(tagged) != len(toks) {
			return false
		}
		for _, tt := range tagged {
			if tt.Tag == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: coarse tags form a fixed small set.
func TestTagPropertyCoarseClosed(t *testing.T) {
	valid := map[Tag]bool{
		TagNN: true, TagNP: true, TagVB: true, TagJJ: true, TagRB: true,
		TagIN: true, TagDT: true, TagCC: true, TagCD: true, TagPRP: true,
		TagTO: true, TagEX: true, TagWDT: true, TagWP: true, TagWRB: true,
		TagPOS: true, TagUH: true, TagSym: true, TagPct: true,
	}
	f := func(s string) bool {
		for _, tt := range TagText(s) {
			if !valid[tt.Tag.Coarse()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
