package pos

import (
	"strings"
	"unicode"

	"etap/internal/textproc"
)

// TaggedToken pairs a surface token with its part-of-speech tag.
type TaggedToken struct {
	Token textproc.Token
	Tag   Tag
}

// TagTokens assigns a part-of-speech tag to every token. The algorithm
// follows the QTag recipe: (1) lexicon lookup, (2) morphological suffix
// guess for unknown words, (3) a left-to-right contextual repair pass.
func TagTokens(tokens []textproc.Token) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, tok := range tokens {
		out[i] = TaggedToken{Token: tok, Tag: initialTag(tok, i == 0)}
	}
	repair(out)
	return out
}

// TagText tokenizes and tags text in one call.
func TagText(text string) []TaggedToken {
	return TagTokens(textproc.Tokenize(text))
}

// initialTag assigns the context-free tag of a single token.
func initialTag(tok textproc.Token, sentenceInitial bool) Tag {
	switch tok.Kind {
	case textproc.KindNumber:
		return TagCD
	case textproc.KindSymbol:
		return TagSym
	case textproc.KindPunct:
		if tok.Text == "'" {
			return TagPOS
		}
		return TagPct
	}

	lower := strings.ToLower(tok.Text)
	if t, ok := lexicon[lower]; ok {
		// Capitalized lexicon word mid-sentence is still a proper noun
		// candidate only when the lexicon calls it a noun; keep closed
		// classes as tagged.
		if !sentenceInitial && isCapitalized(tok.Text) && (t == TagNN || t == TagNNS) {
			return TagNP
		}
		return t
	}

	// Unknown capitalized word (not sentence-initial): proper noun.
	if isCapitalized(tok.Text) && !sentenceInitial {
		return TagNP
	}
	// Sentence-initial unknown capitalized word: decide by suffix; if the
	// suffix guess says noun, prefer proper noun when fully unknown.
	t := suffixGuess(lower)
	if sentenceInitial && isCapitalized(tok.Text) && t == TagNN && looksLikeName(tok.Text) {
		return TagNP
	}
	return t
}

// suffixGuess infers a tag for an unknown lower-case word from its
// morphology, longest suffix first.
func suffixGuess(w string) Tag {
	n := len(w)
	switch {
	case n > 6 && strings.HasSuffix(w, "ically"),
		n > 4 && strings.HasSuffix(w, "ly"):
		return TagRB
	case n > 5 && strings.HasSuffix(w, "ization"),
		n > 4 && strings.HasSuffix(w, "tion"),
		n > 4 && strings.HasSuffix(w, "sion"),
		n > 4 && strings.HasSuffix(w, "ment"),
		n > 4 && strings.HasSuffix(w, "ness"),
		n > 4 && strings.HasSuffix(w, "ship"),
		n > 3 && strings.HasSuffix(w, "ity"),
		n > 3 && strings.HasSuffix(w, "ism"),
		n > 3 && strings.HasSuffix(w, "ist"),
		n > 3 && strings.HasSuffix(w, "dom"),
		n > 3 && strings.HasSuffix(w, "ance"),
		n > 3 && strings.HasSuffix(w, "ence"):
		return TagNN
	case n > 4 && strings.HasSuffix(w, "able"),
		n > 4 && strings.HasSuffix(w, "ible"),
		n > 3 && strings.HasSuffix(w, "ful"),
		n > 3 && strings.HasSuffix(w, "ous"),
		n > 3 && strings.HasSuffix(w, "ive"),
		n > 3 && strings.HasSuffix(w, "ial"),
		n > 2 && strings.HasSuffix(w, "al"),
		n > 2 && strings.HasSuffix(w, "ic"):
		return TagJJ
	case n > 3 && strings.HasSuffix(w, "ing"):
		return TagVBG
	case n > 2 && strings.HasSuffix(w, "ed"):
		return TagVBD
	case n > 3 && strings.HasSuffix(w, "ize"),
		n > 3 && strings.HasSuffix(w, "ise"),
		n > 3 && strings.HasSuffix(w, "ify"),
		n > 3 && strings.HasSuffix(w, "ate"):
		return TagVB
	case n > 2 && strings.HasSuffix(w, "er"):
		return TagNN // agentive noun more common than comparative in news
	case n > 3 && strings.HasSuffix(w, "est"):
		return TagJJS
	case n > 1 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		// Plural noun or 3sg verb; default plural noun, repaired later.
		return TagNNS
	default:
		return TagNN
	}
}

// repair applies contextual repair rules left to right, resolving the
// systematic ambiguities the context-free pass leaves behind.
func repair(toks []TaggedToken) {
	for i := range toks {
		cur := &toks[i]
		var prev, next *TaggedToken
		if i > 0 {
			prev = &toks[i-1]
		}
		if i+1 < len(toks) {
			next = &toks[i+1]
		}

		switch {
		// Lexicon verb inflections: derive vbz/vbd/vbg for known base verbs.
		case cur.Tag == TagNNS && prev != nil &&
			(prev.Tag == TagNP || prev.Tag == TagNN || prev.Tag == TagPRP || prev.Tag == TagNNS):
			// "company acquires", "it grows": 3sg verb after subject — but
			// only when the word's stem is a known verb.
			if base, ok := strip3sg(cur.Token.Lower()); ok && lexicon[base] == TagVB {
				cur.Tag = TagVBZ
			}

		// "to" + base-form verb: infinitive.
		case prev != nil && prev.Tag == TagTO:
			if lexicon[cur.Token.Lower()] == TagVB {
				cur.Tag = TagVB
			} else if cur.Tag == TagNN && isKnownVerbForm(cur.Token.Lower()) {
				cur.Tag = TagVB
			}

		// Modal + anything verb-ish → base verb.
		case prev != nil && prev.Tag == TagMD && (cur.Tag == TagNN || cur.Tag == TagNNS):
			if isKnownVerbForm(cur.Token.Lower()) {
				cur.Tag = TagVB
			}

		// Determiner/adjective + vbd/vbg → adjective or noun use:
		// "the combined company", "a leading provider".
		case (cur.Tag == TagVBD || cur.Tag == TagVBG) && prev != nil &&
			(prev.Tag == TagDT || prev.Tag == TagJJ || prev.Tag == TagPPS):
			if next != nil && (next.Tag == TagNN || next.Tag == TagNNS || next.Tag == TagNP) {
				cur.Tag = TagJJ // participial modifier
			} else {
				cur.Tag = TagNN // nominalized ("the filing")
			}

		// have/has/had + vbd → past participle.
		case cur.Tag == TagVBD && prev != nil && isPerfectAux(prev.Token.Lower()):
			cur.Tag = TagVBN

		// is/are/was/were + vbd → passive participle.
		case cur.Tag == TagVBD && prev != nil && isBeAux(prev.Token.Lower()):
			cur.Tag = TagVBN
		}
	}
}

func strip3sg(w string) (string, bool) {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 3:
		return w[:len(w)-3] + "y", true
	case strings.HasSuffix(w, "es") && len(w) > 2:
		if base := w[:len(w)-2]; lexicon[base] == TagVB {
			return base, true
		}
		return w[:len(w)-1], true // "closes" -> "close"
	case strings.HasSuffix(w, "s") && len(w) > 1:
		return w[:len(w)-1], true
	}
	return "", false
}

// isKnownVerbForm reports whether w is an inflection of a lexicon verb.
func isKnownVerbForm(w string) bool {
	if lexicon[w] == TagVB {
		return true
	}
	if base, ok := strip3sg(w); ok && lexicon[base] == TagVB {
		return true
	}
	for _, suf := range []string{"ed", "ing"} {
		if strings.HasSuffix(w, suf) {
			base := w[:len(w)-len(suf)]
			if lexicon[base] == TagVB || lexicon[base+"e"] == TagVB {
				return true
			}
		}
	}
	return false
}

func isPerfectAux(w string) bool {
	return w == "has" || w == "have" || w == "had" || w == "having"
}

func isBeAux(w string) bool {
	switch w {
	case "is", "are", "was", "were", "be", "been", "being", "am":
		return true
	}
	return false
}

func isCapitalized(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// looksLikeName reports whether a capitalized word has name-like shape
// (no internal digits, reasonable length).
func looksLikeName(s string) bool {
	if len(s) < 2 {
		return false
	}
	for _, r := range s {
		if unicode.IsDigit(r) {
			return false
		}
	}
	return true
}
