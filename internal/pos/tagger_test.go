package pos

import (
	"testing"

	"etap/internal/textproc"
)

func tagsOf(text string) map[string]Tag {
	out := map[string]Tag{}
	for _, tt := range TagText(text) {
		out[tt.Token.Text] = tt.Tag
	}
	return out
}

func seq(text string) []Tag {
	tagged := TagText(text)
	out := make([]Tag, len(tagged))
	for i, tt := range tagged {
		out[i] = tt.Tag
	}
	return out
}

func TestTagClosedClasses(t *testing.T) {
	got := tagsOf("The company and its board will merge with them.")
	cases := map[string]Tag{
		"The": TagDT, "and": TagCC, "its": TagPPS, "will": TagMD,
		"with": TagIN, "them": TagPRP,
	}
	for w, want := range cases {
		if got[w] != want {
			t.Errorf("%q: got %q, want %q", w, got[w], want)
		}
	}
}

func TestTagVerbs(t *testing.T) {
	got := tagsOf("The firm announced that revenue grew sharply.")
	if got["announced"] != TagVBD {
		t.Errorf("announced: got %q, want vbd", got["announced"])
	}
	if got["grew"] != TagVBD {
		t.Errorf("grew: got %q, want vbd", got["grew"])
	}
	if got["sharply"] != TagRB {
		t.Errorf("sharply: got %q, want rb", got["sharply"])
	}
}

func TestTagProperNouns(t *testing.T) {
	got := tagsOf("Analysts said Quorvane hired Brandywine.")
	if got["Quorvane"] != TagNP {
		t.Errorf("Quorvane: got %q, want np", got["Quorvane"])
	}
	if got["Brandywine"] != TagNP {
		t.Errorf("Brandywine: got %q, want np", got["Brandywine"])
	}
}

func TestTagNumbers(t *testing.T) {
	got := tagsOf("Revenue rose 10 percent to 5.2 billion in 2004.")
	if got["10"] != TagCD || got["5.2"] != TagCD || got["2004"] != TagCD {
		t.Errorf("number tags wrong: %v", got)
	}
	if got["billion"] != TagCD {
		t.Errorf("billion: got %q, want cd", got["billion"])
	}
}

func TestTagInfinitive(t *testing.T) {
	got := tagsOf("The board plans to acquire a rival.")
	if got["acquire"] != TagVB {
		t.Errorf("acquire after to: got %q, want vb", got["acquire"])
	}
}

func TestTagPassiveParticiple(t *testing.T) {
	got := tagsOf("The deal was announced on Friday.")
	if got["announced"] != TagVBN {
		t.Errorf("announced after was: got %q, want vbn", got["announced"])
	}
}

func TestTagPerfect(t *testing.T) {
	got := tagsOf("The company has reported strong earnings.")
	if got["reported"] != TagVBN {
		t.Errorf("reported after has: got %q, want vbn", got["reported"])
	}
}

func TestTag3sgVerbAfterSubject(t *testing.T) {
	tagged := TagText("It acquires startups.")
	var acquires Tag
	for _, tt := range tagged {
		if tt.Token.Text == "acquires" {
			acquires = tt.Tag
		}
	}
	if acquires != TagVBZ {
		t.Errorf("acquires: got %q, want vbz", acquires)
	}
}

func TestTagAdjectives(t *testing.T) {
	got := tagsOf("The new interim chief posted solid quarterly results.")
	for _, w := range []string{"new", "interim", "solid", "quarterly"} {
		if got[w] != TagJJ {
			t.Errorf("%q: got %q, want jj", w, got[w])
		}
	}
}

func TestTagUnknownSuffixes(t *testing.T) {
	got := tagsOf("the reorganization was blargful and proceeded smoothlyly")
	if got["reorganization"] != TagNN {
		t.Errorf("reorganization: got %q, want nn", got["reorganization"])
	}
	if got["blargful"] != TagJJ {
		t.Errorf("blargful: got %q, want jj", got["blargful"])
	}
	if got["smoothlyly"] != TagRB {
		t.Errorf("smoothlyly: got %q, want rb", got["smoothlyly"])
	}
}

func TestTagSymbolsAndPunct(t *testing.T) {
	got := tagsOf("Profit hit $5 billion, up 10%.")
	if got["$"] != TagSym || got["%"] != TagSym {
		t.Errorf("symbol tags wrong: $=%q %%=%q", got["$"], got["%"])
	}
	if got[","] != TagPct || got["."] != TagPct {
		t.Errorf("punct tags wrong: ,=%q .=%q", got[","], got["."])
	}
}

func TestTagEmptyInput(t *testing.T) {
	if got := TagText(""); len(got) != 0 {
		t.Errorf("empty: got %d tags", len(got))
	}
}

func TestTagTokensAlignWithInput(t *testing.T) {
	toks := textproc.Tokenize("Acme Corp acquired Widget Inc.")
	tagged := TagTokens(toks)
	if len(tagged) != len(toks) {
		t.Fatalf("got %d tagged, want %d", len(tagged), len(toks))
	}
	for i := range toks {
		if tagged[i].Token != toks[i] {
			t.Errorf("token %d mismatch", i)
		}
	}
}

func TestCoarseMapping(t *testing.T) {
	cases := map[Tag]Tag{
		TagVBD: TagVB, TagVBG: TagVB, TagVBZ: TagVB, TagVBN: TagVB,
		TagNNS: TagNN, TagJJR: TagJJ, TagJJS: TagJJ,
		TagNP: TagNP, TagRB: TagRB, TagIN: TagIN,
	}
	for in, want := range cases {
		if got := in.Coarse(); got != want {
			t.Errorf("Coarse(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsContent(t *testing.T) {
	for _, tag := range []Tag{TagNN, TagNNS, TagNP, TagVB, TagVBD, TagJJ, TagRB} {
		if !tag.IsContent() {
			t.Errorf("%q should be content", tag)
		}
	}
	for _, tag := range []Tag{TagDT, TagIN, TagCC, TagCD, TagPct, TagSym, TagTO} {
		if tag.IsContent() {
			t.Errorf("%q should not be content", tag)
		}
	}
}

func TestTagSentenceInitialVerb(t *testing.T) {
	// Sentence-initial capitalized lexicon word stays in its class.
	got := seq("Announced today, the merger surprised analysts.")
	if got[0] != TagVBD && got[0] != TagVBN {
		t.Errorf("Announced: got %q, want a verb tag", got[0])
	}
}

func BenchmarkTagText(b *testing.B) {
	text := "Acme Corp announced that it has acquired Widget Systems for $120 million, and the new chief executive expects revenue to grow 15 percent next year."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TagText(text)
	}
}
