// Streaming endpoints: the HTTP face of internal/alert. Attaching a
// manager turns the static lead browser into the paper's actual
// program — documents stream in through POST /ingest, subscriptions
// are managed over a CRUD API, and alerts flow out through webhooks
// (the manager's job) and a live SSE stream (served here).
//
//	POST   /ingest              enqueue one document (429 on a full queue)
//	GET    /subscriptions       list subscriptions
//	POST   /subscriptions       create a subscription
//	GET    /subscriptions/{id}  fetch one subscription
//	PUT    /subscriptions/{id}  replace a subscription's filters
//	DELETE /subscriptions/{id}  delete a subscription
//	GET    /alerts/stream       live alert feed (SSE)
//	GET    /alerts/deadletters  alerts delivery gave up on
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"etap/internal/alert"
	"etap/internal/rank"
)

// AddLeads implements alert.Sink over the server's lead store: streamed
// events land exactly where batch extraction puts them, under the same
// lock, bumping the same checkpoint revision.
func (s *Server) AddLeads(events []rank.Event, now time.Time) int {
	if len(events) == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := s.leads.Add(events, now)
	// Even a zero-added call may refresh scores of existing leads, so
	// any non-empty batch advances the revision for the checkpointer.
	s.rev.Add(1)
	return added
}

// AttachAlerts mounts the streaming API over an alert manager. Call
// before serving; the manager's lifecycle (Start/Close) stays with the
// caller. /healthz starts reporting — and degrading on — the
// subsystem's health.
func (s *Server) AttachAlerts(m *alert.Manager) {
	s.alerts = m
	s.handle("POST", "/ingest", s.handleIngest)
	s.handle("GET", "/subscriptions", s.handleSubscriptionList)
	s.handle("POST", "/subscriptions", s.handleSubscriptionCreate)
	s.handle("GET", "/subscriptions/{id}", s.handleSubscriptionGet)
	s.handle("PUT", "/subscriptions/{id}", s.handleSubscriptionUpdate)
	s.handle("DELETE", "/subscriptions/{id}", s.handleSubscriptionDelete)
	s.handle("GET", "/alerts/deadletters", s.handleDeadLetters)
	s.handle("GET", "/alerts/stream", s.handleAlertStream)
}

// maxIngestBody bounds POST bodies on the streaming endpoints.
const maxIngestBody = 1 << 20

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var doc alert.Document
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, "bad document: "+err.Error())
		return
	}
	switch id, err := s.alerts.EnqueueTraced(doc); {
	case err == nil:
		resp := map[string]string{"queued": doc.URL}
		if id != "" {
			// The handle for GET /debug/traces/{id} — and the trace ID the
			// eventual webhook's traceparent header will carry.
			resp["trace_id"] = id
		}
		writeJSON(w, http.StatusAccepted, resp)
	case errors.Is(err, alert.ErrQueueFull):
		// Backpressure: the client should retry later, not buffer here.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, alert.ErrClosed), errors.Is(err, alert.ErrNotStarted):
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, alert.ErrWAL):
		// The document could not be made durable; it was NOT accepted.
		// 503 (not 429): the log, not the client, is the problem, and a
		// retry is safe — replay dedup absorbs any partial acceptance.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSubscriptionList(w http.ResponseWriter, _ *http.Request) {
	subs := s.alerts.Subscriptions().List()
	if subs == nil {
		subs = []alert.Subscription{}
	}
	writeJSON(w, http.StatusOK, subs)
}

func (s *Server) handleSubscriptionCreate(w http.ResponseWriter, r *http.Request) {
	var sub alert.Subscription
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad subscription: "+err.Error())
		return
	}
	stored, err := s.alerts.Subscriptions().Add(sub)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, stored)
}

func (s *Server) handleSubscriptionGet(w http.ResponseWriter, r *http.Request) {
	sub, err := s.alerts.Subscriptions().Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sub)
}

func (s *Server) handleSubscriptionUpdate(w http.ResponseWriter, r *http.Request) {
	var sub alert.Subscription
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&sub); err != nil {
		writeError(w, http.StatusBadRequest, "bad subscription: "+err.Error())
		return
	}
	stored, err := s.alerts.Subscriptions().Update(r.PathValue("id"), sub)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, stored)
	case errors.Is(err, alert.ErrUnknownSubscription):
		writeError(w, http.StatusNotFound, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleSubscriptionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.alerts.Unsubscribe(id); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleDeadLetters(w http.ResponseWriter, _ *http.Request) {
	dead := s.alerts.DeadLetters()
	if dead == nil {
		dead = []alert.DeadLetter{}
	}
	writeJSON(w, http.StatusOK, dead)
}

// handleAlertStream serves the live alert feed as Server-Sent Events:
// one "data:" frame per alert, as JSON. The connection stays open
// until the client leaves or the broadcaster shuts down.
func (s *Server) handleAlertStream(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	// The outer http.Server's WriteTimeout would kill a long-lived
	// stream; lift it for this response only. Unsupported writers
	// (test recorders) just keep their default.
	//etaplint:ignore error-swallowing -- recorders without deadline support still serve the stream fine
	rc.SetWriteDeadline(time.Time{})
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	ch, cancel := s.alerts.Broadcaster().Subscribe()
	defer cancel()
	// An opening comment flushes headers so clients see the stream is
	// live before the first alert fires.
	if _, err := fmt.Fprint(w, ": connected\n\n"); err != nil {
		return
	}
	if err := rc.Flush(); err != nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-ch:
			if !ok {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", frame); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
