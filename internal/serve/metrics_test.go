package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"etap/internal/obs"
	"etap/internal/store"
)

// TestMetricsEndpoint asserts /metrics reflects traffic served by the
// same Server: per-route request counts, latency histograms, response
// codes, and the runtime gauges.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewWithRegistry(nil, store.New(), reg)

	for i := 0; i < 3; i++ {
		if rec, _ := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
			t.Fatalf("healthz status %d", rec.Code)
		}
	}
	get(t, srv, "/leads")

	rec, body := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`etap_http_requests_total{path="/healthz"} 3`,
		`etap_http_requests_total{path="/leads"} 1`,
		`etap_http_responses_total{code="200",path="/healthz"} 3`,
		`etap_http_request_duration_seconds_count{path="/healthz"} 3`,
		"# TYPE etap_http_request_duration_seconds histogram",
		"etap_go_goroutines",
		"etap_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestVarsEndpoint asserts the JSON snapshot mirrors the same registry.
func TestVarsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv := NewWithRegistry(nil, store.New(), reg)
	get(t, srv, "/healthz")

	rec, body := get(t, srv, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Fatalf("vars status %d", rec.Code)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if got := snap[`etap_http_requests_total{path="/healthz"}`]; got != float64(1) {
		t.Fatalf("healthz request count = %v, want 1", got)
	}
}

// TestHealthReadiness asserts the enriched /healthz document.
func TestHealthReadiness(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/healthz")
	var h Health
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Leads != 3 || h.Drivers != 1 {
		t.Fatalf("health = %+v", h)
	}
	if h.Goroutines < 1 || h.HeapAllocB == 0 || h.UptimeSeconds < 0 {
		t.Fatalf("runtime stats missing: %+v", h)
	}
}

// TestConcurrentReads drives parallel read traffic; with -race this
// verifies the RWMutex conversion left no data race between read-only
// handlers and review mutations.
func TestConcurrentReads(t *testing.T) {
	srv, _ := testServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				get(t, srv, "/leads")
				get(t, srv, "/companies")
				get(t, srv, "/healthz")
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			req := httptest.NewRequest(http.MethodPost, "/leads/review?id=a%230", nil)
			srv.ServeHTTP(httptest.NewRecorder(), req)
		}
	}()
	wg.Wait()
}
