package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/store"
	"etap/internal/web"
)

// gatePipeline is an alert.Pipeline whose extraction blocks until
// released — the deterministic way to hold the ingest queue full. It
// emits one Acme event per page containing "merger".
type gatePipeline struct {
	entered chan string
	release chan struct{}
}

func (p *gatePipeline) ExtractAllEvents(pages []*web.Page, _ float64) []rank.Event {
	if p.entered != nil {
		p.entered <- pages[0].URL
		<-p.release
	}
	var out []rank.Event
	for _, pg := range pages {
		if strings.Contains(pg.Text, "merger") {
			out = append(out, rank.Event{
				SnippetID: pg.URL + "#0", Text: pg.Text,
				Driver: "mergers-acquisitions", Company: "Acme", Score: 0.9,
			})
		}
	}
	return out
}

// failDeliverer always fails permanently — the shortest path to a
// dead letter.
type failDeliverer struct{}

func (failDeliverer) Deliver(context.Context, alert.Subscription, alert.Alert) error {
	return &alert.PermanentError{Err: errors.New("endpoint gone")}
}

func testClock() time.Time { return time.Unix(1_750_000_000, 0) }

// alertServer wires a Server and a manager over the given pipeline and
// deliverer; the server itself is the lead sink.
func alertServer(t *testing.T, pipeline alert.Pipeline, deliver alert.Deliverer, cfg alert.Config) (*Server, *alert.Manager) {
	t.Helper()
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	w := web.New()
	w.Freeze()
	cfg.Clock = testClock
	cfg.Registry = obs.NewRegistry()
	cfg.Deliverer = deliver
	if cfg.Retry.IsZero() {
		cfg.Retry = gather.RetryConfig{MaxAttempts: 2, Sleep: func(time.Duration) {}, AttemptTimeout: -1}
	}
	m := alert.NewManager(pipeline, srv, w, cfg)
	m.Start(context.Background())
	t.Cleanup(m.Close)
	srv.AttachAlerts(m)
	return srv, m
}

func postJSON(t *testing.T, srv http.Handler, path string, v any) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec
}

func mustFlush(t *testing.T, m *alert.Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
}

func leadCount(t *testing.T, srv http.Handler) int {
	t.Helper()
	rec, body := get(t, srv, "/leads?top=1000")
	if rec.Code != http.StatusOK {
		t.Fatalf("/leads: %d", rec.Code)
	}
	var leads []store.Lead
	if err := json.Unmarshal(body, &leads); err != nil {
		t.Fatal(err)
	}
	return len(leads)
}

func TestIngestEndpointAcceptsAndStores(t *testing.T) {
	srv, m := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
	rec := postJSON(t, srv, "/ingest", alert.Document{
		URL: "http://news.example.com/1", Text: "Acme completed the merger.",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	mustFlush(t, m)
	if n := leadCount(t, srv); n != 1 {
		t.Fatalf("leads = %d, want 1", n)
	}
	// Malformed body and invalid documents are client errors.
	req := httptest.NewRequest(http.MethodPost, "/ingest", strings.NewReader("{not json"))
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rr.Code)
	}
	if rec := postJSON(t, srv, "/ingest", alert.Document{Text: "no url"}); rec.Code != http.StatusBadRequest {
		t.Fatalf("no url: %d", rec.Code)
	}
}

// TestIngestIdempotency is the regression test for the satellite
// requirement: ingesting the same document twice — and replaying
// batch-extracted events — must not duplicate trigger events in
// /leads.
func TestIngestIdempotency(t *testing.T) {
	srv, sys := testServer(t) // trained system over the synthetic corpus
	w := sys.Web()
	m := alert.NewManager(sys, srv, w, alert.Config{
		Clock:     testClock,
		Registry:  obs.NewRegistry(),
		Deliverer: failDeliverer{},
		Retry:     gather.RetryConfig{MaxAttempts: 1, Sleep: func(time.Duration) {}, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()
	srv.AttachAlerts(m)

	// Batch phase: extract over the whole corpus and store the leads,
	// then seed the manager the way etapd does at startup.
	events := sys.ExtractAllEvents(pagesOf(w), 0.5)
	if len(events) == 0 {
		t.Fatal("batch extraction found no events")
	}
	srv.AddLeads(events, testClock())
	m.SeedEvents(events)
	baseline := leadCount(t, srv)

	// Replay a slice of the original corpus through the ingest path:
	// every URL is a duplicate, every event already fingerprinted.
	urls := w.URLs()
	for _, u := range urls[:min(len(urls), 40)] {
		p, _ := w.Page(u)
		rec := postJSON(t, srv, "/ingest", alert.Document{URL: p.URL, Title: p.Title, Text: p.Text})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("re-ingest %s: %d", u, rec.Code)
		}
	}
	mustFlush(t, m)
	if n := leadCount(t, srv); n != baseline {
		t.Fatalf("re-ingesting the corpus changed /leads: %d -> %d", baseline, n)
	}

	// A brand-new document alerts once, then re-ingestion of it is a
	// no-op too.
	doc := alert.Document{
		URL:  "http://stream.example.com/fresh",
		Text: "Acme Corp announced that a new chief executive officer was appointed to lead Acme Corp.",
	}
	for i := 0; i < 2; i++ {
		if rec := postJSON(t, srv, "/ingest", doc); rec.Code != http.StatusAccepted {
			t.Fatalf("ingest %d: %d", i, rec.Code)
		}
		mustFlush(t, m)
	}
	after := leadCount(t, srv)
	if after < baseline || after > baseline+2 {
		t.Fatalf("fresh document: leads %d -> %d", baseline, after)
	}
	second := leadCount(t, srv)
	if second != after {
		t.Fatalf("second ingest of the same document changed /leads: %d -> %d", after, second)
	}
}

func pagesOf(w *web.Web) []*web.Page {
	var out []*web.Page
	for _, u := range w.URLs() {
		p, _ := w.Page(u)
		out = append(out, p)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestHealthzDegradation drives /healthz through the table of
// streaming-subsystem states: healthy, ingest queue saturated, and
// dead letters pending.
func TestHealthzDegradation(t *testing.T) {
	type check struct {
		name       string
		setup      func(t *testing.T) (http.Handler, func())
		wantCode   int
		wantStatus string
		wantReason string
	}
	cases := []check{
		{
			name: "healthy with idle manager",
			setup: func(t *testing.T) (http.Handler, func()) {
				srv, _ := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
				return srv, func() {}
			},
			wantCode:   http.StatusOK,
			wantStatus: "ok",
		},
		{
			name: "ingest queue saturated",
			setup: func(t *testing.T) (http.Handler, func()) {
				gate := &gatePipeline{entered: make(chan string, 8), release: make(chan struct{})}
				srv, _ := alertServer(t, gate, failDeliverer{}, alert.Config{QueueSize: 1, Workers: 1})
				// First document occupies the worker inside the gate;
				// the second fills the 1-slot queue.
				if rec := postJSON(t, srv, "/ingest", alert.Document{URL: "http://n/1", Text: "a"}); rec.Code != http.StatusAccepted {
					t.Fatalf("ingest 1: %d", rec.Code)
				}
				<-gate.entered
				if rec := postJSON(t, srv, "/ingest", alert.Document{URL: "http://n/2", Text: "b"}); rec.Code != http.StatusAccepted {
					t.Fatalf("ingest 2: %d", rec.Code)
				}
				// And a third bounces with 429 — the backpressure path.
				if rec := postJSON(t, srv, "/ingest", alert.Document{URL: "http://n/3", Text: "c"}); rec.Code != http.StatusTooManyRequests {
					t.Fatalf("ingest 3: %d, want 429", rec.Code)
				}
				// Closing release lets every gated extraction proceed;
				// entered is buffered so later documents never block on it.
				return srv, func() { close(gate.release) }
			},
			wantCode:   http.StatusServiceUnavailable,
			wantStatus: "degraded",
			wantReason: alert.DegradedQueueSaturated,
		},
		{
			name: "dead letters pending",
			setup: func(t *testing.T) (http.Handler, func()) {
				srv, m := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
				if rec := postJSON(t, srv, "/subscriptions", alert.Subscription{WebhookURL: "http://dead.example.com/h"}); rec.Code != http.StatusCreated {
					t.Fatalf("subscribe: %d", rec.Code)
				}
				if rec := postJSON(t, srv, "/ingest", alert.Document{URL: "http://n/1", Text: "the merger"}); rec.Code != http.StatusAccepted {
					t.Fatalf("ingest: %d", rec.Code)
				}
				mustFlush(t, m)
				return srv, func() {}
			},
			wantCode:   http.StatusServiceUnavailable,
			wantStatus: "degraded",
			wantReason: alert.DegradedDeadLetters,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			srv, release := tc.setup(t)
			defer release()
			rec, body := get(t, srv, "/healthz")
			if rec.Code != tc.wantCode {
				t.Fatalf("code = %d, want %d (%s)", rec.Code, tc.wantCode, body)
			}
			var h Health
			if err := json.Unmarshal(body, &h); err != nil {
				t.Fatal(err)
			}
			if h.Status != tc.wantStatus {
				t.Fatalf("status = %q, want %q", h.Status, tc.wantStatus)
			}
			if h.Alerts == nil {
				t.Fatal("healthz missing alerts block")
			}
			if tc.wantReason != "" {
				found := false
				for _, r := range h.Degraded {
					if r == tc.wantReason {
						found = true
					}
				}
				if !found {
					t.Fatalf("degraded = %v, want %q", h.Degraded, tc.wantReason)
				}
			}
		})
	}
}

func TestSubscriptionCRUDOverHTTP(t *testing.T) {
	srv, _ := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
	// Empty list first.
	rec, body := get(t, srv, "/subscriptions")
	if rec.Code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Fatalf("empty list: %d %s", rec.Code, body)
	}
	rec = postJSON(t, srv, "/subscriptions", alert.Subscription{
		Company: "Acme", Driver: "mergers-acquisitions", MinScore: 0.6,
		WebhookURL: "http://crm.example.com/hook",
	})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, rec.Body)
	}
	var created alert.Subscription
	if err := json.Unmarshal(rec.Body.Bytes(), &created); err != nil {
		t.Fatal(err)
	}
	if created.ID == "" {
		t.Fatalf("created = %+v", created)
	}
	// Get it back.
	rec, body = get(t, srv, "/subscriptions/"+created.ID)
	if rec.Code != http.StatusOK {
		t.Fatalf("get: %d", rec.Code)
	}
	var got alert.Subscription
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got != created {
		t.Fatalf("get = %+v, want %+v", got, created)
	}
	// Invalid subscription is a 400.
	if rec := postJSON(t, srv, "/subscriptions", alert.Subscription{MinScore: 7}); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid create: %d", rec.Code)
	}
	// Delete, then both get and delete 404.
	req := httptest.NewRequest(http.MethodDelete, "/subscriptions/"+created.ID, nil)
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("delete: %d", rr.Code)
	}
	if rec, _ := get(t, srv, "/subscriptions/"+created.ID); rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rec.Code)
	}
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, httptest.NewRequest(http.MethodDelete, "/subscriptions/"+created.ID, nil))
	if rr.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", rr.Code)
	}
}

func TestAlertStreamSSE(t *testing.T) {
	srv, m := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	reader := bufio.NewReader(resp.Body)
	// The opening comment arrives before any alert.
	line, err := reader.ReadString('\n')
	if err != nil || !strings.HasPrefix(line, ": connected") {
		t.Fatalf("opening frame = %q, %v", line, err)
	}
	// Wait for the subscriber to register before publishing, so the
	// broadcast cannot race the subscription.
	deadline := time.Now().Add(2 * time.Second)
	for m.Health().SSEClients == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	rec := postJSON(t, srv, "/ingest", alert.Document{
		URL: "http://news.example.com/live", Text: "A merger, live on the stream.",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d", rec.Code)
	}
	mustFlush(t, m)
	dataCh := make(chan string, 1)
	go func() {
		for {
			l, err := reader.ReadString('\n')
			if err != nil {
				return
			}
			if strings.HasPrefix(l, "data: ") {
				dataCh <- l
				return
			}
		}
	}()
	select {
	case l := <-dataCh:
		var a alert.Alert
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(l), "data: ")), &a); err != nil {
			t.Fatalf("frame %q: %v", l, err)
		}
		if !strings.Contains(a.Event.Text, "live on the stream") {
			t.Fatalf("alert = %+v", a)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no SSE data frame within 3s")
	}
}

func TestAddLeadsBumpsRevision(t *testing.T) {
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	before := srv.Revision()
	if n := srv.AddLeads(nil, testClock()); n != 0 || srv.Revision() != before {
		t.Fatalf("empty AddLeads: n=%d rev=%d", n, srv.Revision())
	}
	ev := []rank.Event{{SnippetID: "s#0", Driver: "d", Score: 0.8, Text: "x"}}
	if n := srv.AddLeads(ev, testClock()); n != 1 {
		t.Fatalf("AddLeads = %d", n)
	}
	if srv.Revision() != before+1 {
		t.Fatalf("revision = %d, want %d", srv.Revision(), before+1)
	}
	// Re-adding refreshes but still counts as a mutation.
	if n := srv.AddLeads(ev, testClock()); n != 0 {
		t.Fatalf("dup AddLeads = %d", n)
	}
	if srv.Revision() != before+2 {
		t.Fatalf("revision after dup = %d", srv.Revision())
	}
	_ = fmt.Sprint() // keep fmt imported alongside table helpers
}
