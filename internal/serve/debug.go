// Debug surfaces: per-document traces and build identity. These are
// operator endpoints — JSON meant for curl and jq during an incident
// ("why was this alert slow?"), not for subscribers.
//
//	GET /debug/traces        recent trace summaries (?status=, ?min=)
//	GET /debug/traces/{id}   one trace's full span tree
//	GET /debug/build         build identity (version, go, VCS revision)
package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"etap/internal/obs"
)

// AttachTracer mounts the trace browser over a tracer — the same
// tracer the alert manager mints traces into. Call before serving.
func (s *Server) AttachTracer(t *obs.Tracer) {
	s.tracer = t
	s.handle("GET", "/debug/traces", s.handleTraces)
	s.handle("GET", "/debug/traces/{id}", s.handleTrace)
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f obs.TraceFilter
	switch status := q.Get("status"); status {
	case "", "ok", "error":
		f.Status = status
	default:
		writeError(w, http.StatusBadRequest, "bad status: want ok or error")
		return
	}
	if v := q.Get("min"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min: want a duration like 250ms")
			return
		}
		f.MinDuration = d
	}
	list := s.tracer.List(f)
	if list == nil {
		list = []obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tv, ok := s.tracer.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown trace (evicted, sampled out, or never existed)")
		return
	}
	writeJSON(w, http.StatusOK, tv)
}

// buildIdentity reads the binary's own build metadata: module version,
// Go version, and the VCS revision stamped by `go build`.
func buildIdentity() map[string]string {
	id := map[string]string{
		"version":    "unknown",
		"go_version": runtime.Version(),
		"revision":   "unknown",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return id
	}
	if bi.Main.Version != "" {
		id["version"] = bi.Main.Version
	}
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			id["revision"] = kv.Value
		case "vcs.modified":
			id["modified"] = kv.Value
		}
	}
	return id
}

// registerBuildInfo publishes the standard build-identity gauge
// (constant 1; the information lives in the labels) and mounts
// GET /debug/build serving the same facts as JSON.
func (s *Server) registerBuildInfo() {
	id := buildIdentity()
	s.reg.GaugeFunc("etap_build_info",
		"Build identity; constant 1, the labels carry the facts.",
		func() float64 { return 1 },
		"version", id["version"], "go_version", id["go_version"], "revision", id["revision"])
	s.handle("GET", "/debug/build", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, id)
	})
}
