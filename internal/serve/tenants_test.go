package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/store"
	"etap/internal/tenant"
)

// tenantFixture is a server with a knowledge base and tenant registry
// attached, plus two companies of different industries and two leads
// each, so disjoint ICPs yield disjoint lead sets.
type tenantFixture struct {
	srv       *Server
	kb        *kb.KB
	reg       *tenant.Registry
	st        *store.Store
	c1, c2    kb.Company
	industry1 string
	industry2 string
}

func newTenantFixture(t *testing.T) *tenantFixture {
	t.Helper()
	k := kb.Generate(kb.Config{Seed: 42})
	companies := k.Companies()
	c1 := companies[0]
	var c2 kb.Company
	for _, c := range companies[1:] {
		if c.Industry != c1.Industry {
			c2 = c
			break
		}
	}
	if c2.Key == "" {
		t.Fatal("generated KB has a single industry; cannot build disjoint ICPs")
	}
	st := store.New()
	st.Add([]rank.Event{
		{SnippetID: "s#0", Driver: "mergers-acquisitions", Company: c1.Name, Score: 0.9, Text: c1.Name + " announced a merger."},
		{SnippetID: "s#1", Driver: "mergers-acquisitions", Company: c1.Name, Score: 0.7, Text: c1.Name + " is acquiring a rival."},
		{SnippetID: "s#2", Driver: "mergers-acquisitions", Company: c2.Name, Score: 0.8, Text: c2.Name + " announced a merger."},
		{SnippetID: "s#3", Driver: "mergers-acquisitions", Company: c2.Name, Score: 0.6, Text: c2.Name + " is acquiring a rival."},
	}, time.Unix(1_120_000_000, 0))
	reg := tenant.NewRegistry(tenant.Config{
		Clock:    func() time.Time { return time.Unix(1_700_000_000, 0) },
		Registry: obs.NewRegistry(),
	})
	srv := NewWithRegistry(nil, st, obs.NewRegistry())
	srv.AttachKB(k)
	srv.AttachTenants(reg)
	return &tenantFixture{
		srv: srv, kb: k, reg: reg, st: st,
		c1: c1, c2: c2, industry1: c1.Industry, industry2: c2.Industry,
	}
}

func sendJSON(t *testing.T, srv http.Handler, method, path string, v any) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	var body bytes.Buffer
	if err := json.NewEncoder(&body).Encode(v); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(method, path, &body)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestTenantCRUDOverHTTP(t *testing.T) {
	f := newTenantFixture(t)
	rec, body := sendJSON(t, f.srv, http.MethodPost, "/tenants",
		tenant.Profile{Name: "Alpha", Industries: []string{f.industry1}})
	if rec.Code != http.StatusCreated {
		t.Fatalf("create: %d %s", rec.Code, body)
	}
	var created tenant.Profile
	if err := json.Unmarshal(body, &created); err != nil {
		t.Fatal(err)
	}
	if created.ID != "tenant-1" || created.Created == 0 {
		t.Fatalf("created = %+v", created)
	}

	rec, body = get(t, f.srv, "/tenants/"+created.ID)
	if rec.Code != http.StatusOK || !strings.Contains(string(body), "Alpha") {
		t.Fatalf("get: %d %s", rec.Code, body)
	}

	rec, _ = sendJSON(t, f.srv, http.MethodPut, "/tenants/"+created.ID,
		tenant.Profile{Name: "Alpha2", Industries: []string{f.industry2}})
	if rec.Code != http.StatusOK {
		t.Fatalf("update: %d", rec.Code)
	}
	rec, _ = sendJSON(t, f.srv, http.MethodPut, "/tenants/nope", tenant.Profile{})
	if rec.Code != http.StatusNotFound {
		t.Fatalf("update unknown: %d", rec.Code)
	}
	rec, body = get(t, f.srv, "/tenants")
	if rec.Code != http.StatusOK {
		t.Fatalf("list: %d", rec.Code)
	}
	var list []tenant.Profile
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Name != "Alpha2" {
		t.Fatalf("list = %+v", list)
	}

	req := httptest.NewRequest(http.MethodDelete, "/tenants/"+created.ID, nil)
	rec = httptest.NewRecorder()
	f.srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: %d", rec.Code)
	}
	rec, _ = get(t, f.srv, "/tenants/"+created.ID)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: %d", rec.Code)
	}

	// Invalid profiles are rejected at the API boundary.
	rec, _ = sendJSON(t, f.srv, http.MethodPost, "/tenants",
		tenant.Profile{SizeBuckets: []string{"gigantic"}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid profile: %d", rec.Code)
	}
}

func snippetIDs(t *testing.T, body []byte) []string {
	t.Helper()
	var leads []TenantLead
	if err := json.Unmarshal(body, &leads); err != nil {
		t.Fatalf("decoding tenant leads: %v\n%s", err, body)
	}
	ids := make([]string, 0, len(leads))
	for _, l := range leads {
		ids = append(ids, l.SnippetID)
	}
	return ids
}

// TestTenantLeadsDisjointAndRestart is the acceptance scenario: two
// tenants with disjoint ICPs over the same corpus receive disjoint,
// deterministically reproducible lead sets, and a restart that reloads
// the knowledge base, tenant registry, and lead store from disk serves
// byte-identical responses.
func TestTenantLeadsDisjointAndRestart(t *testing.T) {
	f := newTenantFixture(t)
	a, err := f.reg.Add(tenant.Profile{Name: "A", Industries: []string{f.industry1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.reg.Add(tenant.Profile{Name: "B", Industries: []string{f.industry2}})
	if err != nil {
		t.Fatal(err)
	}

	recA, bodyA := get(t, f.srv, "/leads?tenant="+a.ID)
	recB, bodyB := get(t, f.srv, "/leads?tenant="+b.ID)
	if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
		t.Fatalf("status %d / %d", recA.Code, recB.Code)
	}
	idsA, idsB := snippetIDs(t, bodyA), snippetIDs(t, bodyB)
	if len(idsA) == 0 || len(idsB) == 0 {
		t.Fatalf("empty tenant lead sets: %v / %v", idsA, idsB)
	}
	inA := map[string]bool{}
	for _, id := range idsA {
		inA[id] = true
	}
	for _, id := range idsB {
		if inA[id] {
			t.Fatalf("lead %s served to both disjoint ICPs", id)
		}
	}

	// Same query again is deterministic (and exercises the cache path).
	_, bodyA2 := get(t, f.srv, "/leads?tenant="+a.ID)
	if !bytes.Equal(bodyA, bodyA2) {
		t.Fatalf("repeated tenant query diverged:\n%s\nvs\n%s", bodyA, bodyA2)
	}

	// Restart: persist everything, reload from disk, compare responses.
	dir := t.TempDir()
	kbPath := filepath.Join(dir, "kb.jsonl")
	tenPath := filepath.Join(dir, "tenants.jsonl")
	leadPath := filepath.Join(dir, "leads.jsonl")
	if err := f.kb.SaveFile(kbPath); err != nil {
		t.Fatal(err)
	}
	if _, err := f.reg.SaveFile(tenPath); err != nil {
		t.Fatal(err)
	}
	if err := f.st.SaveFile(leadPath); err != nil {
		t.Fatal(err)
	}
	k2, err := kb.LoadFile(kbPath)
	if err != nil {
		t.Fatal(err)
	}
	reg2, err := tenant.LoadFile(tenPath, tenant.Config{
		Clock:    func() time.Time { return time.Unix(1_700_000_000, 0) },
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := store.LoadFile(leadPath)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewWithRegistry(nil, st2, obs.NewRegistry())
	srv2.AttachKB(k2)
	srv2.AttachTenants(reg2)
	_, bodyA3 := get(t, srv2, "/leads?tenant="+a.ID)
	_, bodyB3 := get(t, srv2, "/leads?tenant="+b.ID)
	if !bytes.Equal(bodyA, bodyA3) {
		t.Fatalf("tenant A response changed across restart:\n%s\nvs\n%s", bodyA, bodyA3)
	}
	if !bytes.Equal(bodyB, bodyB3) {
		t.Fatalf("tenant B response changed across restart:\n%s\nvs\n%s", bodyB, bodyB3)
	}
}

// TestTenantLeadsProfileUpdateInvalidates checks a cached tenant view
// can never outlive its ICP: after an update the next read reflects
// the new profile.
func TestTenantLeadsProfileUpdateInvalidates(t *testing.T) {
	f := newTenantFixture(t)
	a, err := f.reg.Add(tenant.Profile{Industries: []string{f.industry1}})
	if err != nil {
		t.Fatal(err)
	}
	_, body1 := get(t, f.srv, "/leads?tenant="+a.ID)
	ids1 := snippetIDs(t, body1)
	if _, err := f.reg.Update(a.ID, tenant.Profile{Industries: []string{f.industry2}}); err != nil {
		t.Fatal(err)
	}
	_, body2 := get(t, f.srv, "/leads?tenant="+a.ID)
	ids2 := snippetIDs(t, body2)
	if len(ids1) == 0 || len(ids2) == 0 {
		t.Fatalf("empty lead sets: %v / %v", ids1, ids2)
	}
	for _, id := range ids2 {
		for _, old := range ids1 {
			if id == old {
				t.Fatalf("stale lead %s served after ICP update", id)
			}
		}
	}
}

// TestTenantLeadsQuotaAndMinScore checks the profile quota clamps the
// response and the blended minScore floor drops weak leads.
func TestTenantLeadsQuotaAndMinScore(t *testing.T) {
	f := newTenantFixture(t)
	a, err := f.reg.Add(tenant.Profile{Industries: []string{f.industry1}, Quota: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, body := get(t, f.srv, "/leads?tenant="+a.ID)
	if ids := snippetIDs(t, body); len(ids) != 1 {
		t.Fatalf("quota 1 served %d leads: %v", len(ids), ids)
	}
	// A minScore above any achievable blend yields an empty list.
	strict, err := f.reg.Add(tenant.Profile{Industries: []string{f.industry1}, MinScore: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	_, body = get(t, f.srv, "/leads?tenant="+strict.ID)
	if ids := snippetIDs(t, body); len(ids) != 0 {
		t.Fatalf("minScore 0.99 served %v", ids)
	}
}

// TestTenantLeadsErrors pins the error contract: tenant filtering off
// is a 400, an unknown tenant a 404.
func TestTenantLeadsErrors(t *testing.T) {
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	rec, _ := get(t, srv, "/leads?tenant=tenant-1")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("tenants not attached: %d", rec.Code)
	}
	f := newTenantFixture(t)
	rec, _ = get(t, f.srv, "/leads?tenant=nope")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d", rec.Code)
	}
}

// TestLeadsKBEnrichment checks the base /leads view carries each
// subject's knowledge-base record once a KB is attached.
func TestLeadsKBEnrichment(t *testing.T) {
	f := newTenantFixture(t)
	_, body := get(t, f.srv, "/leads")
	var out []struct {
		store.Lead
		KB *kb.Company `json:"kb"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("got %d leads", len(out))
	}
	for _, l := range out {
		if l.KB == nil {
			t.Fatalf("lead %s missing KB record", l.SnippetID)
		}
		if want, _ := f.kb.Lookup(l.Company); want.Key != l.KB.Key {
			t.Fatalf("lead %s enriched with %s, want %s", l.SnippetID, l.KB.Key, want.Key)
		}
	}
}
