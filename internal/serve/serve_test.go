package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"etap/internal/core"
	"etap/internal/corpus"
	"etap/internal/rank"
	"etap/internal/store"
)

func testServer(t *testing.T) (*Server, *core.System) {
	t.Helper()
	gen := corpus.NewGenerator(corpus.Config{
		Seed: 401, RelevantPerDriver: 25, BackgroundDocs: 80,
		HardNegativePerDriver: 8, FamousEventDocs: 3,
	})
	w := core.BuildWeb(gen.World())
	sys := core.New(w, core.Config{Seed: 401, TopK: 50, NegativeCount: 500})
	var spec core.SalesDriver
	for _, sd := range core.DefaultDrivers() {
		if sd.ID == string(corpus.ChangeInManagement) {
			spec = sd
		}
	}
	if _, err := sys.AddDriver(spec, nil); err != nil {
		t.Fatal(err)
	}

	st := store.New()
	st.Add([]rank.Event{
		{SnippetID: "a#0", Driver: spec.ID, Company: "Acme Corp", Score: 0.95, Text: "Acme named a CEO."},
		{SnippetID: "a#1", Driver: spec.ID, Company: "Widget Inc", Score: 0.6, Text: "Widget promoted a CFO."},
		{SnippetID: "b#0", Driver: "other", Company: "Acme", Score: 0.8, Text: "Acme other event."},
	}, time.Unix(1_120_000_000, 0))
	return New(sys, st), sys
}

func get(t *testing.T, srv http.Handler, path string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	srv, _ := testServer(t)
	rec, body := get(t, srv, "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["status"] != "ok" || out["leads"].(float64) != 3 {
		t.Fatalf("health = %v", out)
	}
}

func TestDrivers(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/drivers")
	var drivers []string
	if err := json.Unmarshal(body, &drivers); err != nil {
		t.Fatal(err)
	}
	if len(drivers) != 1 || drivers[0] != string(corpus.ChangeInManagement) {
		t.Fatalf("drivers = %v", drivers)
	}
}

func TestLeadsFilters(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/leads?driver="+string(corpus.ChangeInManagement)+"&min=0.9")
	var leads []store.Lead
	if err := json.Unmarshal(body, &leads); err != nil {
		t.Fatal(err)
	}
	if len(leads) != 1 || leads[0].SnippetID != "a#0" {
		t.Fatalf("leads = %+v", leads)
	}
	// Company filter is alias-resolved.
	_, body = get(t, srv, "/leads?company=ACME")
	if err := json.Unmarshal(body, &leads); err != nil {
		t.Fatal(err)
	}
	if len(leads) != 2 {
		t.Fatalf("alias filter: %+v", leads)
	}
}

func TestLeadsBadParams(t *testing.T) {
	srv, _ := testServer(t)
	if rec, _ := get(t, srv, "/leads?min=abc"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad min: %d", rec.Code)
	}
	if rec, _ := get(t, srv, "/leads?top=0"); rec.Code != http.StatusBadRequest {
		t.Errorf("bad top: %d", rec.Code)
	}
}

func TestReviewFlow(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/leads/review?id=a%230", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("review status %d: %s", rec.Code, rec.Body)
	}
	_, body := get(t, srv, "/leads?unreviewed=1")
	var leads []store.Lead
	if err := json.Unmarshal(body, &leads); err != nil {
		t.Fatal(err)
	}
	for _, l := range leads {
		if l.SnippetID == "a#0" {
			t.Fatal("reviewed lead still listed as unreviewed")
		}
	}
	// Unknown lead -> 404; missing id -> 400.
	req = httptest.NewRequest(http.MethodPost, "/leads/review?id=ghost", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("ghost review: %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodPost, "/leads/review", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("missing id: %d", rec.Code)
	}
}

func TestScoreEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	text := "Halcyon Systems appointed James Smith as CEO on Friday."
	rec, body := get(t, srv, "/score?driver="+string(corpus.ChangeInManagement)+
		"&text="+strings.ReplaceAll(text, " ", "+"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["trigger"] != true {
		t.Fatalf("appointment snippet not a trigger: %v", out)
	}
	if rec, _ := get(t, srv, "/score?driver=ghost&text=x"); rec.Code != http.StatusNotFound {
		t.Errorf("ghost driver: %d", rec.Code)
	}
	if rec, _ := get(t, srv, "/score?driver=x"); rec.Code != http.StatusBadRequest {
		t.Errorf("missing text: %d", rec.Code)
	}
}

func TestCompaniesEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	_, body := get(t, srv, "/companies?top=5")
	var scores []rank.CompanyScore
	if err := json.Unmarshal(body, &scores); err != nil {
		t.Fatal(err)
	}
	if len(scores) != 2 {
		t.Fatalf("companies = %+v", scores)
	}
	// Acme has events in two drivers (rank 1 in each) -> MRR 1.
	if rank.Canonical(scores[0].Company) != "acme" || scores[0].Events != 2 {
		t.Fatalf("top company = %+v", scores[0])
	}
}

// paramStore is a lightweight store for handler-validation tests that
// don't need a trained system.
func paramStore() *store.Store {
	st := store.New()
	st.Add([]rank.Event{
		{SnippetID: "p#0", Driver: "ma", Company: "Acme", Score: 0.9, Text: "Acme buys Widget."},
		{SnippetID: "p#1", Driver: "ma", Company: "Widget", Score: 0.4, Text: "Widget sold."},
	}, time.Unix(1_120_000_000, 0))
	return st
}

func TestLeadsParamValidation(t *testing.T) {
	srv := New(nil, paramStore())
	cases := []struct {
		name string
		path string
		code int
		want int // leads expected in a 200 body; -1 = skip
	}{
		{"no params", "/leads", http.StatusOK, 2},
		{"good min", "/leads?min=0.5", http.StatusOK, 1},
		{"nan min", "/leads?min=NaN", http.StatusBadRequest, -1},
		{"inf min", "/leads?min=Inf", http.StatusBadRequest, -1},
		{"plus inf min", "/leads?min=%2BInf", http.StatusBadRequest, -1},
		{"minus inf min", "/leads?min=-Inf", http.StatusBadRequest, -1},
		{"garbage min", "/leads?min=abc", http.StatusBadRequest, -1},
		{"good top", "/leads?top=1", http.StatusOK, 1},
		{"max top", "/leads?top=1000", http.StatusOK, 2},
		{"zero top", "/leads?top=0", http.StatusBadRequest, -1},
		{"negative top", "/leads?top=-3", http.StatusBadRequest, -1},
		{"oversized top", "/leads?top=1001", http.StatusBadRequest, -1},
		{"garbage top", "/leads?top=ten", http.StatusBadRequest, -1},
		{"oversized companies top", "/companies?top=99999", http.StatusBadRequest, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, body := get(t, srv, tc.path)
			if rec.Code != tc.code {
				t.Fatalf("%s: code %d, want %d (%s)", tc.path, rec.Code, tc.code, body)
			}
			if tc.want < 0 {
				return
			}
			var leads []store.Lead
			if err := json.Unmarshal(body, &leads); err != nil {
				t.Fatal(err)
			}
			if len(leads) != tc.want {
				t.Fatalf("%s: %d leads, want %d", tc.path, len(leads), tc.want)
			}
		})
	}
}

func TestRevisionAndSaveLeads(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "leads.jsonl")
	srv := New(nil, paramStore())
	if srv.Revision() != 0 {
		t.Fatalf("fresh revision = %d", srv.Revision())
	}
	// A failed review does not move the revision; a successful one does.
	req := httptest.NewRequest(http.MethodPost, "/leads/review?id=ghost", nil)
	srv.ServeHTTP(httptest.NewRecorder(), req)
	if srv.Revision() != 0 {
		t.Fatal("404 review bumped the revision")
	}
	req = httptest.NewRequest(http.MethodPost, "/leads/review?id=p%230", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || srv.Revision() != 1 {
		t.Fatalf("review: code %d revision %d", rec.Code, srv.Revision())
	}
	rev, err := srv.SaveLeads(path)
	if err != nil || rev != 1 {
		t.Fatalf("SaveLeads: rev %d err %v", rev, err)
	}
	loaded, err := store.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Find(store.Query{})
	if len(got) != 2 {
		t.Fatalf("saved %d leads", len(got))
	}
	for _, l := range got {
		if l.SnippetID == "p#0" && !l.Reviewed {
			t.Fatal("reviewed flag lost in checkpoint")
		}
	}
}

func TestNilSystem(t *testing.T) {
	srv := New(nil, nil)
	if rec, _ := get(t, srv, "/score?driver=d&text=t"); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("score without system: %d", rec.Code)
	}
	rec, body := get(t, srv, "/drivers")
	if rec.Code != http.StatusOK || strings.TrimSpace(string(body)) != "[]" {
		t.Errorf("drivers without system: %d %s", rec.Code, body)
	}
}
