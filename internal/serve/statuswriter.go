package serve

import "net/http"

// StatusWriter wraps a ResponseWriter and records the response code —
// the single implementation shared by the serve instrumentation and
// cmd/etapd's access log. A handler that never calls WriteHeader is
// recorded as 200, matching net/http's implicit status on first write.
type StatusWriter struct {
	http.ResponseWriter
	status int
}

// NewStatusWriter wraps w with the recorded status initialized to 200.
func NewStatusWriter(w http.ResponseWriter) *StatusWriter {
	return &StatusWriter{ResponseWriter: w, status: http.StatusOK}
}

// Status returns the recorded response code.
func (w *StatusWriter) Status() int { return w.status }

// WriteHeader records and forwards the response code.
func (w *StatusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the wrapper.
func (w *StatusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *StatusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
