// Package serve exposes a trained ETAP system and its lead store over
// HTTP — the interface the paper's screenshots (Figures 7 and 8) imply:
// sales representatives browse ranked trigger events, filter them, and
// mark them reviewed.
//
// Endpoints (all JSON):
//
//	GET  /drivers                      trained driver IDs
//	GET  /leads?driver=&company=&min=&unreviewed=1&top=
//	POST /leads/review?id=<snippetID>  mark a lead reviewed
//	GET  /score?driver=&text=          classify one snippet
//	GET  /companies?top=               company MRR ranking from the store
//	GET  /healthz                      liveness
package serve

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"etap/internal/core"
	"etap/internal/rank"
	"etap/internal/store"
)

// Server wires a trained system and a lead store into an http.Handler.
// All handlers are safe for concurrent use; store mutations are guarded.
type Server struct {
	sys *core.System

	mu    sync.Mutex
	leads *store.Store

	mux *http.ServeMux
}

// New builds the server. Either argument may be nil: a nil system
// disables /score and /drivers, a nil store starts empty.
func New(sys *core.System, leads *store.Store) *Server {
	if leads == nil {
		leads = store.New()
	}
	s := &Server{sys: sys, leads: leads, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /drivers", s.handleDrivers)
	s.mux.HandleFunc("GET /leads", s.handleLeads)
	s.mux.HandleFunc("POST /leads/review", s.handleReview)
	s.mux.HandleFunc("GET /score", s.handleScore)
	s.mux.HandleFunc("GET /companies", s.handleCompanies)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := s.leads.Len()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "leads": n})
}

func (s *Server) handleDrivers(w http.ResponseWriter, _ *http.Request) {
	if s.sys == nil {
		writeJSON(w, http.StatusOK, []string{})
		return
	}
	drivers := s.sys.Drivers()
	sort.Strings(drivers)
	writeJSON(w, http.StatusOK, drivers)
}

func (s *Server) handleLeads(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	minScore := 0.0
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad min")
			return
		}
		minScore = f
	}
	top := 50
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad top")
			return
		}
		top = n
	}
	s.mu.Lock()
	results := s.leads.Find(store.Query{
		Driver:     q.Get("driver"),
		Company:    q.Get("company"),
		MinScore:   minScore,
		Unreviewed: q.Get("unreviewed") == "1",
	})
	s.mu.Unlock()
	if len(results) > top {
		results = results[:top]
	}
	writeJSON(w, http.StatusOK, results)
}

func (s *Server) handleReview(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing id")
		return
	}
	s.mu.Lock()
	ok := s.leads.MarkReviewed(id)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown lead")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"reviewed": id})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if s.sys == nil {
		writeError(w, http.StatusServiceUnavailable, "no system attached")
		return
	}
	q := r.URL.Query()
	driver, text := q.Get("driver"), q.Get("text")
	if driver == "" || text == "" {
		writeError(w, http.StatusBadRequest, "missing driver or text")
		return
	}
	p, err := s.sys.Score(driver, text)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"driver": driver, "score": p, "trigger": p >= 0.5,
	})
}

func (s *Server) handleCompanies(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad top")
			return
		}
		top = n
	}
	// Rank all stored leads per driver, then aggregate (Equation 2).
	s.mu.Lock()
	all := s.leads.Find(store.Query{})
	s.mu.Unlock()
	byDriver := map[string][]rank.Event{}
	for _, l := range all {
		byDriver[l.Driver] = append(byDriver[l.Driver], l.Event)
	}
	var ranked []rank.Ranked
	for _, events := range byDriver {
		ranked = append(ranked, rank.ByScore(events)...)
	}
	scores := rank.CompanyMRR(ranked)
	if len(scores) > top {
		scores = scores[:top]
	}
	writeJSON(w, http.StatusOK, scores)
}
