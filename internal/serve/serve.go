// Package serve exposes a trained ETAP system and its lead store over
// HTTP — the interface the paper's screenshots (Figures 7 and 8) imply:
// sales representatives browse ranked trigger events, filter them, and
// mark them reviewed.
//
// Endpoints (all JSON unless noted):
//
//	GET  /drivers                      trained driver IDs
//	GET  /leads?driver=&company=&min=&unreviewed=1&top=&tenant=
//	POST /leads/review?id=<snippetID>  mark a lead reviewed
//	GET  /score?driver=&text=          classify one snippet
//	GET  /companies?top=               company MRR ranking from the store
//	GET  /healthz                      readiness: drivers, store size, uptime, runtime
//	GET  /metrics                      Prometheus text exposition of the registry
//	GET  /debug/vars                   JSON snapshot of the registry
//	GET  /debug/build                  build identity (version, go, VCS revision)
//	GET  /debug/traces                 recent per-document traces (AttachTracer)
//	GET  /debug/traces/{id}            one trace's full span tree (AttachTracer)
//
// With a tenant registry attached (AttachTenants), /tenants offers ICP
// profile CRUD and /leads?tenant= serves the tenant-scoped,
// ICP-filtered, blend-re-ranked view (see tenants.go). With a company
// knowledge base attached (AttachKB), served leads carry their
// subject's firmographic record.
//
// Every endpoint is instrumented: per-endpoint request counters,
// response-code counters, and latency histograms report into the
// server's obs.Registry (the process-wide obs.Default unless
// NewWithRegistry chose another).
package serve

import (
	"encoding/json"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"etap/internal/alert"
	"etap/internal/core"
	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/store"
	"etap/internal/tenant"
)

// Server wires a trained system and a lead store into an http.Handler.
// All handlers are safe for concurrent use; store reads take a shared
// lock so concurrent GETs don't serialize, mutations take the write
// lock.
type Server struct {
	sys *core.System

	mu    sync.RWMutex
	leads *store.Store
	rev   atomic.Uint64 // store mutation count, bumped under mu

	reg    *obs.Registry
	start  time.Time
	mux    *http.ServeMux
	alerts *alert.Manager // nil until AttachAlerts
	tracer *obs.Tracer    // nil until AttachTracer

	kbase   *kb.KB           // nil until AttachKB
	tenants *tenant.Registry // nil until AttachTenants
	tcache  *tenant.Cache    // created by AttachTenants

	tenantRequests *obs.Counter // tenant-scoped /leads requests
	quotaClamps    *obs.Counter // responses truncated by a profile quota
}

// New builds the server over the process-wide metrics registry. Either
// argument may be nil: a nil system disables /score and /drivers, a nil
// store starts empty.
func New(sys *core.System, leads *store.Store) *Server {
	return NewWithRegistry(sys, leads, nil)
}

// NewWithRegistry is New reporting into (and exposing at /metrics) a
// specific registry; nil means obs.Default.
func NewWithRegistry(sys *core.System, leads *store.Store, reg *obs.Registry) *Server {
	if leads == nil {
		leads = store.New()
	}
	if reg == nil {
		reg = obs.Default
	}
	s := &Server{sys: sys, leads: leads, reg: reg, start: time.Now(), mux: http.NewServeMux()}
	s.registerRuntimeMetrics()
	s.registerBuildInfo()
	s.handle("GET", "/healthz", s.handleHealth)
	s.handle("GET", "/drivers", s.handleDrivers)
	s.handle("GET", "/leads", s.handleLeads)
	s.handle("POST", "/leads/review", s.handleReview)
	s.handle("GET", "/score", s.handleScore)
	s.handle("GET", "/companies", s.handleCompanies)
	s.mux.HandleFunc("GET /metrics", s.reg.ServeMetrics)
	s.mux.HandleFunc("GET /debug/vars", s.reg.ServeVars)
	return s
}

// registerRuntimeMetrics publishes scrape-time runtime gauges. Get-or-
// create semantics make this idempotent across servers sharing a
// registry.
func (s *Server) registerRuntimeMetrics() {
	s.reg.GaugeFunc("etap_go_goroutines", "Live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	s.reg.GaugeFunc("etap_go_heap_alloc_bytes", "Heap bytes allocated and in use.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	s.reg.GaugeFunc("etap_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
}

// handle mounts an instrumented handler: one request counter and
// latency histogram per route pattern, plus a per-(route, code)
// response counter. Patterns are static, so label cardinality is
// bounded by the route table.
func (s *Server) handle(method, pattern string, h http.HandlerFunc) {
	requests := s.reg.Counter("etap_http_requests_total",
		"HTTP requests by route.", "path", pattern)
	latency := s.reg.Histogram("etap_http_request_duration_seconds",
		"HTTP request latency by route.", nil, "path", pattern)
	s.mux.HandleFunc(method+" "+pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := NewStatusWriter(w)
		h(sw, r)
		requests.Inc()
		latency.ObserveSince(start)
		s.reg.Counter("etap_http_responses_total",
			"HTTP responses by route and status code.",
			"path", pattern, "code", strconv.Itoa(sw.Status())).Inc()
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Revision returns the lead-store mutation count: it increments on
// every successful state change through the API, so a checkpointer can
// skip saves when nothing changed.
func (s *Server) Revision() uint64 { return s.rev.Load() }

// SaveLeads checkpoints the lead store to path (atomic write+rename)
// under the store's read lock, returning the revision the snapshot
// captured. Mutations take the write lock, so the revision and the
// written bytes are consistent.
func (s *Server) SaveLeads(path string) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev.Load(), s.leads.SaveFile(path)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already sent, so all that can be done is
		// note the truncated body — typically the peer hung up.
		slog.Debug("serve: writing JSON response", "err", err)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

// Health is the /healthz readiness document. With an alert manager
// attached it carries the streaming subsystem's load too, and Status
// degrades (with the response code) when that subsystem is unhealthy.
type Health struct {
	Status        string  `json:"status"`
	Leads         int     `json:"leads"`
	Drivers       int     `json:"drivers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Goroutines    int     `json:"goroutines"`
	HeapAllocB    uint64  `json:"heap_alloc_bytes"`
	NumGC         uint32  `json:"num_gc"`
	// Alerts reports the streaming subsystem; absent without one.
	Alerts *alert.Health `json:"alerts,omitempty"`
	// Degraded lists why Status is "degraded" (see alert.Health).
	Degraded []string `json:"degraded,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	n := s.leads.Len()
	s.mu.RUnlock()
	drivers := 0
	if s.sys != nil {
		drivers = len(s.sys.Drivers())
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := Health{
		Status:        "ok",
		Leads:         n,
		Drivers:       drivers,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		HeapAllocB:    ms.HeapAlloc,
		NumGC:         ms.NumGC,
	}
	status := http.StatusOK
	if s.alerts != nil {
		ah := s.alerts.Health()
		h.Alerts = &ah
		if reasons := ah.Degraded(); len(reasons) > 0 {
			// Still serving — readiness probes should route traffic
			// away until the stream drains, hence 503 over 200.
			h.Status = "degraded"
			h.Degraded = reasons
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, h)
}

func (s *Server) handleDrivers(w http.ResponseWriter, _ *http.Request) {
	if s.sys == nil {
		writeJSON(w, http.StatusOK, []string{})
		return
	}
	drivers := s.sys.Drivers()
	sort.Strings(drivers)
	writeJSON(w, http.StatusOK, drivers)
}

// maxTop caps the top parameter on list endpoints: a request for more
// is a 400, not an unbounded response.
const maxTop = 1000

func (s *Server) handleLeads(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	minScore := 0.0
	if v := q.Get("min"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		// ParseFloat accepts "NaN" and "±Inf"; a NaN MinScore makes
		// every score comparison false and the filter match everything,
		// so reject non-finite values outright.
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			writeError(w, http.StatusBadRequest, "bad min: want a finite number")
			return
		}
		minScore = f
	}
	top := 50
	if v := q.Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxTop {
			writeError(w, http.StatusBadRequest, "bad top: want 1..1000")
			return
		}
		top = n
	}
	if tenantID := q.Get("tenant"); tenantID != "" {
		s.handleTenantLeads(w, q, tenantID, minScore, top)
		return
	}
	s.mu.RLock()
	results := s.leads.Find(store.Query{
		Driver:     q.Get("driver"),
		Company:    q.Get("company"),
		MinScore:   minScore,
		Unreviewed: q.Get("unreviewed") == "1",
	})
	s.mu.RUnlock()
	if len(results) > top {
		results = results[:top]
	}
	writeJSON(w, http.StatusOK, s.enrichLeads(results))
}

func (s *Server) handleReview(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "missing id")
		return
	}
	s.mu.Lock()
	ok := s.leads.MarkReviewed(id)
	if ok {
		s.rev.Add(1)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown lead")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"reviewed": id})
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if s.sys == nil {
		writeError(w, http.StatusServiceUnavailable, "no system attached")
		return
	}
	q := r.URL.Query()
	driver, text := q.Get("driver"), q.Get("text")
	if driver == "" || text == "" {
		writeError(w, http.StatusBadRequest, "missing driver or text")
		return
	}
	p, err := s.sys.Score(driver, text)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"driver": driver, "score": p, "trigger": p >= 0.5,
	})
}

func (s *Server) handleCompanies(w http.ResponseWriter, r *http.Request) {
	top := 20
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxTop {
			writeError(w, http.StatusBadRequest, "bad top: want 1..1000")
			return
		}
		top = n
	}
	// Rank all stored leads per driver, then aggregate (Equation 2).
	s.mu.RLock()
	all := s.leads.Find(store.Query{})
	s.mu.RUnlock()
	byDriver := map[string][]rank.Event{}
	for _, l := range all {
		byDriver[l.Driver] = append(byDriver[l.Driver], l.Event)
	}
	var ranked []rank.Ranked
	for _, events := range byDriver {
		ranked = append(ranked, rank.ByScore(events)...)
	}
	scores := rank.CompanyMRR(ranked)
	if len(scores) > top {
		scores = scores[:top]
	}
	writeJSON(w, http.StatusOK, scores)
}
