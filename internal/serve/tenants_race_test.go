package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/kb"
	"etap/internal/obs"
	"etap/internal/tenant"
)

// countDeliverer counts successful deliveries per subscription.
type countDeliverer struct {
	mu sync.Mutex
	n  map[string]int
}

func newCountDeliverer() *countDeliverer { return &countDeliverer{n: map[string]int{}} }

func (d *countDeliverer) Deliver(_ context.Context, sub alert.Subscription, _ alert.Alert) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.n[sub.ID]++
	return nil
}

func (d *countDeliverer) count(subID string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n[subID]
}

// raceKB is a fixed two-industry knowledge base covering the company
// the gate pipeline attributes events to.
func raceKB(t *testing.T) *kb.KB {
	t.Helper()
	k, err := kb.ReadJSONL(strings.NewReader(
		`{"key":"acme","name":"Acme","industry":"retail","employees":50,"sizeBucket":"small","hq":"New York","founded":1990,"keywords":["commerce"]}
`))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestTenantConcurrentCRUDLeadsAndFanOut drives tenant CRUD, tenant-
// scoped /leads reads, and alert fan-out with tenant-filtered
// subscriptions concurrently — the -race scenario for the multi-tenant
// path — then checks the no-stale-ICP property: once a profile update
// excludes the event's industry, no later event is delivered under the
// old ICP.
func TestTenantConcurrentCRUDLeadsAndFanOut(t *testing.T) {
	k := raceKB(t)
	reg := tenant.NewRegistry(tenant.Config{
		Clock:    testClock,
		Registry: obs.NewRegistry(),
	})
	stable, err := reg.Add(tenant.Profile{Name: "stable", Industries: []string{"retail"}})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 50
	deliver := newCountDeliverer()
	srv, m := alertServer(t, &gatePipeline{}, deliver, alert.Config{
		// SubscriberQueue must hold a full ingest burst: the stable
		// subscription receives every event, and an overflowing lane
		// dead-letters instead of delivering.
		Workers: 4, QueueSize: 256, SubscriberQueue: 2 * iters, Tenants: reg, KB: k,
	})
	srv.AttachKB(k)
	srv.AttachTenants(reg)
	sub, err := m.Subscriptions().Add(alert.Subscription{
		Tenant: stable.ID, WebhookURL: "http://crm.example.com/hook",
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Tenant CRUD: scratch profiles churn while everything else runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			p, err := reg.Add(tenant.Profile{Name: fmt.Sprintf("scratch-%d", i), Industries: []string{"retail"}})
			if err != nil {
				t.Errorf("add: %v", err)
				return
			}
			if _, err := reg.Update(p.ID, tenant.Profile{Industries: []string{"energy"}}); err != nil {
				t.Errorf("update: %v", err)
				return
			}
			if err := reg.Delete(p.ID); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	// Tenant-scoped reads: every response must be 200 and decodable.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			req := httptest.NewRequest(http.MethodGet, "/leads?tenant="+stable.ID, nil)
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Errorf("tenant read %d: status %d: %s", i, rec.Code, rec.Body.String())
				return
			}
		}
	}()
	// Ingest: a stream of fresh merger events for the retail company.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			doc := alert.Document{
				URL:  fmt.Sprintf("http://news.example.com/race/%d", i),
				Text: fmt.Sprintf("Acme merger event %d.", i),
			}
			for {
				err := m.Enqueue(doc)
				if err == nil {
					break
				}
				if err == alert.ErrQueueFull {
					time.Sleep(time.Millisecond)
					continue
				}
				t.Errorf("enqueue: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	mustFlush(t, m)
	if got := deliver.count(sub.ID); got != iters {
		t.Fatalf("delivered %d alerts to the stable tenant, want %d", got, iters)
	}

	// No stale ICP: retarget the profile away from retail, then ingest
	// more events — none may be delivered under the old ICP.
	if _, err := reg.Update(stable.ID, tenant.Profile{Industries: []string{"energy"}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.Enqueue(alert.Document{
			URL:  fmt.Sprintf("http://news.example.com/post-update/%d", i),
			Text: fmt.Sprintf("Acme merger aftermath %d.", i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	mustFlush(t, m)
	if got := deliver.count(sub.ID); got != iters {
		t.Fatalf("stale-ICP delivery: %d alerts after the update, want still %d", got, iters)
	}
}
