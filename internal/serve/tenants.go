// Multi-tenant endpoints: the HTTP face of internal/tenant and
// internal/kb. Attaching a tenant registry mounts ICP CRUD and turns
// /leads?tenant= into a tenant-scoped recommender — the base lead list
// hard-filtered by the tenant's ICP over knowledge-base records, then
// re-ranked by the blend of rank score and ICP fit, floored by the
// profile's minScore and capped by its quota. Attaching a knowledge
// base additionally stamps every served lead with its subject's
// firmographic record.
//
//	GET    /tenants       list tenant ICP profiles
//	POST   /tenants       create a profile (ID assigned when omitted)
//	GET    /tenants/{id}  fetch one profile
//	PUT    /tenants/{id}  replace a profile's ICP (revision bump
//	                      invalidates its cached results)
//	DELETE /tenants/{id}  delete a profile
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"etap/internal/kb"
	"etap/internal/rank"
	"etap/internal/store"
	"etap/internal/tenant"
)

// AttachKB mounts a company knowledge base: every lead served by
// /leads gains a "kb" field with its subject's firmographic record,
// and tenant ICP filtering matches against those records. The KB is
// immutable; no locking is added.
func (s *Server) AttachKB(k *kb.KB) { s.kbase = k }

// AttachTenants mounts the tenant API over a registry. Call before
// serving; persistence (checkpointing the registry) stays with the
// caller.
func (s *Server) AttachTenants(reg *tenant.Registry) {
	s.tenants = reg
	s.tcache = tenant.NewCache(0, s.reg)
	s.tenantRequests = s.reg.Counter("etap_tenant_lead_requests_total",
		"Tenant-scoped /leads requests.")
	s.quotaClamps = s.reg.Counter("etap_tenant_quota_clamps_total",
		"Tenant lead responses truncated by the profile quota.")
	s.handle("GET", "/tenants", s.handleTenantList)
	s.handle("POST", "/tenants", s.handleTenantCreate)
	s.handle("GET", "/tenants/{id}", s.handleTenantGet)
	s.handle("PUT", "/tenants/{id}", s.handleTenantUpdate)
	s.handle("DELETE", "/tenants/{id}", s.handleTenantDelete)
}

func (s *Server) handleTenantList(w http.ResponseWriter, _ *http.Request) {
	profiles := s.tenants.List()
	if profiles == nil {
		profiles = []tenant.Profile{}
	}
	writeJSON(w, http.StatusOK, profiles)
}

func (s *Server) handleTenantCreate(w http.ResponseWriter, r *http.Request) {
	var p tenant.Profile
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, "bad profile: "+err.Error())
		return
	}
	stored, err := s.tenants.Add(p)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, stored)
}

func (s *Server) handleTenantGet(w http.ResponseWriter, r *http.Request) {
	p, _, err := s.tenants.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *Server) handleTenantUpdate(w http.ResponseWriter, r *http.Request) {
	var p tenant.Profile
	body := http.MaxBytesReader(w, r.Body, maxIngestBody)
	if err := json.NewDecoder(body).Decode(&p); err != nil {
		writeError(w, http.StatusBadRequest, "bad profile: "+err.Error())
		return
	}
	stored, err := s.tenants.Update(r.PathValue("id"), p)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, stored)
	case errors.Is(err, tenant.ErrUnknownTenant):
		writeError(w, http.StatusNotFound, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

func (s *Server) handleTenantDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.tenants.Delete(id); err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// TenantLead is one entry of a tenant-scoped /leads response: the
// stored lead plus its ICP fit, the blended score the order sorts by,
// its 1-based rank, and (with a knowledge base attached) the subject's
// firmographic record.
type TenantLead struct {
	store.Lead
	Rank    int         `json:"rank"`
	ICP     float64     `json:"icp"`
	Blended float64     `json:"blended"`
	KB      *kb.Company `json:"kb,omitempty"`
}

// tenantQueryKey canonicalizes the cacheable query parameters.
func tenantQueryKey(q url.Values, minScore float64, top int) string {
	return fmt.Sprintf("d=%s&c=%s&min=%g&top=%d&u=%s",
		q.Get("driver"), q.Get("company"), minScore, top, q.Get("unreviewed"))
}

// lookupKB resolves a lead's company to its knowledge-base record;
// nil when no KB is attached or the company is unknown.
func (s *Server) lookupKB(company string) *kb.Company {
	if s.kbase == nil {
		return nil
	}
	if c, ok := s.kbase.Lookup(company); ok {
		return c
	}
	return nil
}

// handleTenantLeads serves /leads?tenant=: hard ICP filter over the
// base query, blended re-rank, minScore floor, quota clamp, KB
// enrichment. Results are memoized per (tenant, query) and
// invalidated by profile or lead-store generation.
func (s *Server) handleTenantLeads(w http.ResponseWriter, q url.Values, tenantID string, minScore float64, top int) {
	if s.tenants == nil {
		writeError(w, http.StatusBadRequest, "tenant filtering not enabled")
		return
	}
	s.tenantRequests.Inc()
	profile, profRev, err := s.tenants.Get(tenantID)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	key := tenantQueryKey(q, minScore, top)
	if v, ok := s.tcache.Get(tenantID, key, profRev, s.rev.Load()); ok {
		writeJSON(w, http.StatusOK, v)
		return
	}
	// Snapshot the store and its revision under one read lock so the
	// cache entry can never pair new results with an old generation.
	s.mu.RLock()
	storeRev := s.rev.Load()
	results := s.leads.Find(store.Query{
		Driver:     q.Get("driver"),
		Company:    q.Get("company"),
		MinScore:   minScore,
		Unreviewed: q.Get("unreviewed") == "1",
		Filter: func(l store.Lead) bool {
			return profile.MatchCompany(s.lookupKB(l.Company))
		},
	})
	s.mu.RUnlock()

	byID := make(map[string]store.Lead, len(results))
	events := make([]rank.Event, 0, len(results))
	for _, l := range results {
		byID[l.SnippetID] = l
		events = append(events, l.Event)
	}
	ranked := rank.ByBlend(events, func(ev rank.Event) float64 {
		return profile.Score(s.lookupKB(ev.Company), ev.Text)
	}, rank.DefaultBlend)

	out := make([]TenantLead, 0, len(ranked))
	for _, br := range ranked {
		if br.Blended < profile.MinScore {
			continue
		}
		out = append(out, TenantLead{
			Lead:    byID[br.SnippetID],
			ICP:     br.ICP,
			Blended: br.Blended,
			KB:      s.lookupKB(br.Company),
		})
	}
	limit := top
	if profile.Quota > 0 && profile.Quota < limit {
		limit = profile.Quota
	}
	if len(out) > limit {
		out = out[:limit]
		if limit < top {
			s.quotaClamps.Inc()
		}
	}
	// Ranks are positions in the final tenant-visible list.
	for i := range out {
		out[i].Rank = i + 1
	}
	s.tcache.Put(tenantID, key, profRev, storeRev, out)
	writeJSON(w, http.StatusOK, out)
}

// enrichLeads wraps base /leads results with knowledge-base records
// when a KB is attached; without one the input is returned as-is, so
// single-tenant deployments see the original response shape.
func (s *Server) enrichLeads(results []store.Lead) any {
	if s.kbase == nil {
		return results
	}
	type enriched struct {
		store.Lead
		KB *kb.Company `json:"kb,omitempty"`
	}
	out := make([]enriched, 0, len(results))
	for _, l := range results {
		out = append(out, enriched{Lead: l, KB: s.lookupKB(l.Company)})
	}
	return out
}
