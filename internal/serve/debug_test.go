package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/obs"
	"etap/internal/store"
)

func TestDebugBuildEndpoint(t *testing.T) {
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	rec, body := get(t, srv, "/debug/build")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/build: %d %s", rec.Code, body)
	}
	var id map[string]string
	if err := json.Unmarshal(body, &id); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "go_version", "revision"} {
		if id[key] == "" {
			t.Errorf("/debug/build missing %q: %v", key, id)
		}
	}
	if !strings.HasPrefix(id["go_version"], "go") {
		t.Errorf("go_version = %q, want a goX.Y value", id["go_version"])
	}
}

func TestBuildInfoGaugeInMetrics(t *testing.T) {
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	rec, body := get(t, srv, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	text := string(body)
	if !strings.Contains(text, "etap_build_info{") {
		t.Fatalf("/metrics missing etap_build_info:\n%.500s", text)
	}
	for _, label := range []string{`go_version="go`, `version="`, `revision="`} {
		if !strings.Contains(text, label) {
			t.Errorf("etap_build_info missing label %s", label)
		}
	}
	// The gauge's value is the constant 1.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "etap_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("etap_build_info value line = %q, want trailing 1", line)
		}
	}
}

// tracedAlertServer is alertServer plus an attached tracer the manager
// mints traces into.
func tracedAlertServer(t *testing.T, deliver alert.Deliverer) (*Server, *alert.Manager, *obs.Tracer) {
	t.Helper()
	tracer := obs.NewTracer(obs.TracerConfig{SampleRate: 1, Seed: 9, Registry: obs.NewRegistry()})
	srv, m := alertServer(t, &gatePipeline{}, deliver, alert.Config{Tracer: tracer})
	srv.AttachTracer(tracer)
	return srv, m, tracer
}

func TestIngestReturnsTraceIDAndDebugTracesServesIt(t *testing.T) {
	srv, m, _ := tracedAlertServer(t, recordDeliverer{delivered: make(chan alert.Alert, 4)})
	rec := postJSON(t, srv, "/ingest", alert.Document{
		URL: "http://news.example.com/1", Text: "Acme completed the merger.",
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("ingest: %d %s", rec.Code, rec.Body)
	}
	var resp map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	id := resp["trace_id"]
	if len(id) != 32 {
		t.Fatalf("202 trace_id = %q, want 32 hex digits", id)
	}
	mustFlush(t, m)

	// The listing carries the trace.
	lrec, lbody := get(t, srv, "/debug/traces")
	if lrec.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", lrec.Code)
	}
	var list []obs.TraceSummary
	if err := json.Unmarshal(lbody, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != id {
		t.Fatalf("trace list = %+v, want one entry %s", list, id)
	}

	// The detail view resolves the full span tree.
	drec, dbody := get(t, srv, "/debug/traces/"+id)
	if drec.Code != http.StatusOK {
		t.Fatalf("/debug/traces/{id}: %d %s", drec.Code, dbody)
	}
	var tv obs.TraceView
	if err := json.Unmarshal(dbody, &tv); err != nil {
		t.Fatal(err)
	}
	if tv.ID != id || len(tv.Spans) == 0 {
		t.Fatalf("trace view = %+v, want spans for %s", tv, id)
	}
}

// recordDeliverer accepts every alert, reporting it on a channel.
type recordDeliverer struct{ delivered chan alert.Alert }

func (d recordDeliverer) Deliver(_ context.Context, _ alert.Subscription, a alert.Alert) error {
	select {
	case d.delivered <- a:
	default:
	}
	return nil
}

func TestDebugTracesFiltersAndErrors(t *testing.T) {
	srv, m, _ := tracedAlertServer(t, failDeliverer{})
	if _, err := m.Subscriptions().Add(alert.Subscription{ID: "s1", WebhookURL: "https://hook.example/a"}); err != nil {
		t.Fatal(err)
	}
	// One errored trace (delivery dead-letters) and one clean no-match.
	postJSON(t, srv, "/ingest", alert.Document{URL: "http://news.example.com/1", Text: "Acme completed the merger."})
	postJSON(t, srv, "/ingest", alert.Document{URL: "http://news.example.com/2", Text: "nothing to see"})
	mustFlush(t, m)

	rec, body := get(t, srv, "/debug/traces?status=error")
	if rec.Code != http.StatusOK {
		t.Fatalf("status filter: %d", rec.Code)
	}
	var errList []obs.TraceSummary
	if err := json.Unmarshal(body, &errList); err != nil {
		t.Fatal(err)
	}
	if len(errList) != 1 || errList[0].Status != "error" {
		t.Fatalf("error-filtered list = %+v, want exactly the dead-lettered trace", errList)
	}

	// min= parses Go durations.
	if rec, _ := get(t, srv, "/debug/traces?min=1ms"); rec.Code != http.StatusOK {
		t.Fatalf("min filter: %d", rec.Code)
	}

	// Bad parameters are 400s, not panics or empty 200s.
	if rec, _ := get(t, srv, "/debug/traces?status=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad status: %d, want 400", rec.Code)
	}
	if rec, _ := get(t, srv, "/debug/traces?min=bogus"); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad min: %d, want 400", rec.Code)
	}

	// Unknown trace ID is a 404.
	if rec, _ := get(t, srv, "/debug/traces/ffffffffffffffffffffffffffffffff"); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace: %d, want 404", rec.Code)
	}
}

func TestDebugTracesEmptyListIsJSONArray(t *testing.T) {
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	srv.AttachTracer(obs.NewTracer(obs.TracerConfig{Registry: obs.NewRegistry()}))
	rec, body := get(t, srv, "/debug/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/traces: %d", rec.Code)
	}
	if got := strings.TrimSpace(string(body)); got != "[]" {
		t.Fatalf("empty listing = %q, want []", got)
	}
}

// TestAlertStreamDisconnectCleansUpSubscriber pins the SSE handler's
// cleanup: when the client's request context ends, the handler returns
// and its broadcaster subscription is removed — no goroutine or client
// entry leaks behind a closed connection.
func TestAlertStreamDisconnectCleansUpSubscriber(t *testing.T) {
	srv, m := alertServer(t, &gatePipeline{}, failDeliverer{}, alert.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest(http.MethodGet, "/alerts/stream", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()
	// Wait for the subscription to register, then hang up.
	deadline := time.Now().Add(2 * time.Second)
	for m.Broadcaster().Clients() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if m.Broadcaster().Clients() != 1 {
		t.Fatal("stream handler never subscribed")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stream handler did not return after client disconnect")
	}
	if got := m.Broadcaster().Clients(); got != 0 {
		t.Fatalf("clients = %d after disconnect, want 0", got)
	}
}
