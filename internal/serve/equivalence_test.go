package serve

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"etap/internal/alert"
	"etap/internal/gather"
	"etap/internal/obs"
	"etap/internal/rank"
	"etap/internal/store"
)

// eventKey is the identity the streaming dedup layer assigns an event:
// driver plus canonical company plus text. Both runs are projected onto
// it so batch-side snippet-ID duplicates (the same syndicated sentence
// under two URLs) compare equal, exactly as the fingerprint treats them.
func eventKey(ev rank.Event) string {
	return ev.Driver + "\x00" + rank.Canonical(ev.Company) + "\x00" + ev.Text
}

func keyedScores(events []rank.Event) map[string]float64 {
	m := make(map[string]float64, len(events))
	for _, ev := range events {
		m[eventKey(ev)] = ev.Score
	}
	return m
}

// TestBatchStreamingEquivalence is the satellite golden comparison:
// replaying the corpus page by page through the ingest path must leave
// the lead store with the same ranked leads as one batch
// ExtractAllEvents run over the whole corpus — same events, same
// scores, same order by score.
func TestBatchStreamingEquivalence(t *testing.T) {
	_, sys := testServer(t) // trained system over the synthetic corpus
	w := sys.Web()
	pages := pagesOf(w)

	// Golden: one batch run over every page at the default threshold.
	batch := sys.ExtractAllEvents(pages, 0.5)
	if len(batch) == 0 {
		t.Fatal("batch extraction found no events")
	}
	batchStore := store.New()
	batchStore.Add(batch, time.Unix(1_750_000_000, 0))

	// Streaming: the same corpus, one document per /ingest request,
	// into a fresh server and store.
	srv := NewWithRegistry(nil, store.New(), obs.NewRegistry())
	m := alert.NewManager(sys, srv, w, alert.Config{
		Workers:   4,
		QueueSize: len(pages) + 8,
		Clock:     testClock,
		Registry:  obs.NewRegistry(),
		Deliverer: failDeliverer{},
		Retry:     gather.RetryConfig{MaxAttempts: 1, Sleep: func(time.Duration) {}, AttemptTimeout: -1},
	})
	m.Start(context.Background())
	defer m.Close()
	srv.AttachAlerts(m)
	for _, p := range pages {
		rec := postJSON(t, srv, "/ingest", alert.Document{URL: p.URL, Title: p.Title, Text: p.Text})
		if rec.Code != http.StatusAccepted {
			t.Fatalf("ingest %s: %d", p.URL, rec.Code)
		}
	}
	mustFlush(t, m)

	srv.mu.RLock()
	streamed := srv.leads.Find(store.Query{})
	srv.mu.RUnlock()
	var streamedEvents []rank.Event
	for _, l := range streamed {
		streamedEvents = append(streamedEvents, l.Event)
	}

	// Same event set with the same scores, under the dedup identity.
	want, got := keyedScores(batch), keyedScores(streamedEvents)
	if len(got) != len(want) {
		t.Errorf("streaming found %d distinct events, batch %d", len(got), len(want))
	}
	for k, score := range want {
		gs, ok := got[k]
		if !ok {
			t.Errorf("batch event missing from stream: %q", k)
			continue
		}
		if gs != score {
			t.Errorf("score diverged for %q: batch %v, stream %v", k, score, gs)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("stream invented event: %q", k)
		}
	}

	// Same ranking: Find returns leads sorted by score, so the ordered
	// score sequences must match once batch-side duplicates collapse.
	var wantScores, gotScores []float64
	for _, s := range want {
		wantScores = append(wantScores, s)
	}
	for _, s := range got {
		gotScores = append(gotScores, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(wantScores)))
	sort.Sort(sort.Reverse(sort.Float64Slice(gotScores)))
	if fmt.Sprint(wantScores) != fmt.Sprint(gotScores) {
		t.Error("ranked score sequences diverged between batch and streaming runs")
	}
	for i := 1; i < len(streamed); i++ {
		if streamed[i-1].Score < streamed[i].Score {
			t.Fatalf("streamed leads out of rank order at %d", i)
		}
	}
}
