// Package web models the synthetic Web that replaces the live 2005 Web:
// a page store keyed by URL, a hyperlink graph, and a search-engine view
// (backed by internal/index) that answers the smart queries of Section
// 3.3.1 the way the paper used Google — top-k ranked pages.
package web

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"etap/internal/index"
	"etap/internal/textproc"
)

// Page is one web page.
type Page struct {
	URL   string
	Host  string
	Title string
	Text  string
	Links []string
}

// Web is a page store with a search index. The build phase (AddPage,
// AddPages, Freeze) is single-owner; after Freeze the web is immutable
// through the build API but still accepts incremental additions through
// Ingest — the streaming path new documents arrive on. All readers and
// Ingest are safe for concurrent use.
type Web struct {
	mu     sync.RWMutex
	pages  map[string]*Page
	order  []string // insertion order, for deterministic iteration
	ix     index.Engine
	frozen bool
}

// Option configures a Web at construction time.
type Option func(*webOptions)

type webOptions struct {
	index  index.Options
	engine index.Engine
}

// WithIndexOptions selects the search-index configuration (shard count,
// query-cache capacity) for webs built with New.
func WithIndexOptions(o index.Options) Option {
	return func(wo *webOptions) { wo.index = o }
}

// WithEngine backs the web with a caller-supplied search engine — in
// practice a persistent index.SegmentIndex — instead of a fresh in-RAM
// index. A reopened engine may already hold documents; the build and
// ingest paths then repair the page table without re-indexing (ranked
// results are identical either way). Overrides WithIndexOptions.
func WithEngine(e index.Engine) Option {
	return func(wo *webOptions) { wo.engine = e }
}

// New returns an empty Web. With no options the search index uses its
// defaults (GOMAXPROCS shards, DefaultCacheSize query cache).
func New(opts ...Option) *Web {
	var wo webOptions
	for _, o := range opts {
		o(&wo)
	}
	ix := wo.engine
	if ix == nil {
		ix = index.NewWithOptions(wo.index)
	}
	return &Web{pages: make(map[string]*Page), ix: ix}
}

// AddPage stores and indexes a page. Pages must have unique URLs; adding
// after Freeze or re-adding a URL panics. Use Ingest for post-freeze
// additions.
func (w *Web) AddPage(p Page) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frozen {
		panic("web: AddPage after Freeze")
	}
	w.store(p)
	w.indexPage(&p)
}

// indexPage indexes one stored page, skipping documents a reopened
// persistent engine already holds — rebuilding the page table over a
// recovered index must not re-index (and must not trip the engine's
// duplicate panic).
func (w *Web) indexPage(p *Page) {
	if w.ix.Has(p.URL) {
		return
	}
	w.ix.Add(p.URL, p.Title+" "+p.Text)
}

// store validates and records a page in the page table without
// indexing it. Callers hold the write lock.
func (w *Web) store(p Page) *Page {
	if p.URL == "" {
		panic("web: page without URL")
	}
	if _, dup := w.pages[p.URL]; dup {
		panic("web: duplicate URL " + p.URL)
	}
	if p.Host == "" {
		p.Host = HostOf(p.URL)
	}
	cp := p
	w.pages[p.URL] = &cp
	w.order = append(w.order, p.URL)
	return &cp
}

// AddPages bulk-loads pages: page-store bookkeeping (ordering,
// duplicate detection) stays sequential and deterministic, while the
// expensive tokenize-and-index work fans out across a worker pool
// feeding the sharded index concurrently. Behaviour is identical to
// calling AddPage for each page in order; only the load parallelizes.
func (w *Web) AddPages(pages []Page) {
	// Sequential phase: validate and store so order and duplicate
	// detection don't depend on scheduling.
	w.mu.Lock()
	if w.frozen {
		w.mu.Unlock()
		panic("web: AddPages after Freeze")
	}
	stored := make([]*Page, 0, len(pages))
	for _, p := range pages {
		stored = append(stored, w.store(p))
	}
	w.mu.Unlock()
	// Concurrent phase: the index hashes documents to shards, so
	// workers rarely contend on a shard lock. index.Add is safe for
	// concurrent use, so no web lock is held here.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(stored) {
		workers = len(stored)
	}
	if workers <= 1 {
		for _, p := range stored {
			w.indexPage(p)
		}
		return
	}
	jobs := make(chan *Page)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for p := range jobs {
				w.indexPage(p)
			}
		}()
	}
	for _, p := range stored {
		jobs <- p
	}
	close(jobs)
	wg.Wait()
}

// ErrDuplicatePage reports an Ingest of a URL the web already holds —
// the signal the streaming path uses to treat re-ingestion as a no-op
// instead of double-indexing.
var ErrDuplicatePage = errors.New("web: page already present")

// Ingest adds one page after the build phase — the incremental path
// streaming ingestion uses. Unlike AddPage it is safe to call
// concurrently with readers and with other Ingests, works after
// Freeze, and reports a duplicate URL as ErrDuplicatePage instead of
// panicking (re-ingestion must be idempotent, not fatal). The page is
// visible to Page/URLs and searchable once Ingest returns.
func (w *Web) Ingest(p Page) error {
	if p.URL == "" {
		return errors.New("web: page without URL")
	}
	w.mu.Lock()
	if _, dup := w.pages[p.URL]; dup {
		w.mu.Unlock()
		return fmt.Errorf("%s: %w", p.URL, ErrDuplicatePage)
	}
	if p.Host == "" {
		p.Host = HostOf(p.URL)
	}
	cp := p
	w.pages[p.URL] = &cp
	w.order = append(w.order, p.URL)
	already := w.ix.Has(p.URL)
	w.mu.Unlock()
	if already {
		// A reopened persistent engine recovered this document before
		// the page table knew it: keep the just-stored page (repairing
		// the table) but skip re-indexing, and report the duplicate so
		// streaming callers treat the re-ingestion as a no-op.
		return fmt.Errorf("%s: %w", p.URL, ErrDuplicatePage)
	}
	// The index is internally synchronized; holding the web lock
	// through tokenization would serialize concurrent ingests. The
	// page table already holds the URL, so a racing duplicate Ingest
	// fails above rather than double-indexing.
	w.ix.Add(p.URL, p.Title+" "+p.Text)
	return nil
}

// Freeze marks the web immutable through the build API (AddPage,
// AddPages); searches, lookups, and streaming Ingest remain available.
func (w *Web) Freeze() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.frozen = true
}

// Len returns the number of pages.
func (w *Web) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.order)
}

// Page returns the page at url.
func (w *Web) Page(url string) (*Page, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pages[url]
	return p, ok
}

// URLs returns all page URLs in insertion order.
func (w *Web) URLs() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]string(nil), w.order...)
}

// Search runs a search-engine query and returns the top-k pages, like
// "we gathered the top 200 documents returned by the search engine ...
// for each query".
//
//etaplint:ignore context-plumbing -- purely in-memory lookup over the web: no I/O to cancel
func (w *Web) Search(query string, k int) []*Page {
	hits := w.ix.Search(query, k)
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]*Page, 0, len(hits))
	for _, h := range hits {
		if p, ok := w.pages[h.DocID]; ok {
			// A persistent engine can briefly know documents the page
			// table does not (recovered index, table still rebuilding);
			// those hits are dropped rather than returned as nils.
			out = append(out, p)
		}
	}
	return out
}

// Index exposes the underlying search engine for co-occurrence
// statistics (PMI-IR lexicon induction) and operational stats.
func (w *Web) Index() index.Engine { return w.ix }

// Close releases the underlying search engine when it holds external
// resources (a persistent segment index flushes its memtables and
// closes its files); webs over the in-RAM index return nil. The web
// must not be used after Close.
func (w *Web) Close() error {
	if c, ok := w.ix.(interface{ Close() error }); ok {
		return c.Close()
	}
	return nil
}

// Result is one search hit with its result snippet — the few words
// around the best query match, the way the paper's Figure 5 screenshot
// shows search-engine results.
type Result struct {
	Page    *Page
	Snippet string
}

// SearchWithSnippets is Search plus a contextual snippet per hit: the
// window of the page text around the first query-term match, trimmed to
// word boundaries.
//
//etaplint:ignore context-plumbing -- purely in-memory lookup over the web: no I/O to cancel
func (w *Web) SearchWithSnippets(query string, k int) []Result {
	pages := w.Search(query, k)
	q := index.ParseQuery(query)
	var terms []string
	terms = append(terms, q.Terms...)
	for _, p := range q.Phrases {
		terms = append(terms, p...)
	}
	out := make([]Result, len(pages))
	for i, p := range pages {
		out[i] = Result{Page: p, Snippet: resultSnippet(p.Text, terms)}
	}
	return out
}

// resultSnippet extracts ~20 words around the first occurrence of any
// query term (stem-compared); falls back to the page head.
func resultSnippet(text string, queryTerms []string) string {
	const window = 10
	stems := map[string]bool{}
	for _, t := range queryTerms {
		stems[t] = true
	}
	words := strings.Fields(text)
	hit := -1
	for i, w := range words {
		lw := textproc.Stem(strings.ToLower(strings.Trim(w, `.,;:!?"'()`)))
		if stems[lw] {
			hit = i
			break
		}
	}
	if hit < 0 {
		hit = 0
	}
	lo := hit - window
	if lo < 0 {
		lo = 0
	}
	hi := hit + window
	if hi > len(words) {
		hi = len(words)
	}
	snippet := strings.Join(words[lo:hi], " ")
	if lo > 0 {
		snippet = "... " + snippet
	}
	if hi < len(words) {
		snippet += " ..."
	}
	return snippet
}

// Hosts returns the distinct hosts, sorted.
func (w *Web) Hosts() []string {
	w.mu.RLock()
	set := map[string]bool{}
	for _, u := range w.order {
		set[w.pages[u].Host] = true
	}
	w.mu.RUnlock()
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// HostOf extracts the host portion of a URL ("http://host/x" →
// "host"); URLs without a scheme or path separator are their own host.
func HostOf(url string) string {
	s := url
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// String summarizes the web for logs.
func (w *Web) String() string {
	return fmt.Sprintf("web{pages: %d, hosts: %d}", w.Len(), len(w.Hosts()))
}
