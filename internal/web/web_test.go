package web

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"etap/internal/index"
)

func smallWeb() *Web {
	w := New()
	w.AddPage(Page{URL: "http://a.example.com/1", Title: "New CEO at Acme",
		Text: "Acme named a new CEO on Friday.", Links: []string{"http://a.example.com/2"}})
	w.AddPage(Page{URL: "http://a.example.com/2", Title: "Weather",
		Text: "The weather stayed pleasant."})
	w.AddPage(Page{URL: "http://b.example.net/x", Title: "Merger news",
		Text: "IBM acquired Daksh in a landmark deal."})
	return w
}

func TestAddAndLookup(t *testing.T) {
	w := smallWeb()
	if w.Len() != 3 {
		t.Fatalf("len = %d", w.Len())
	}
	p, ok := w.Page("http://a.example.com/1")
	if !ok || p.Title != "New CEO at Acme" {
		t.Fatalf("lookup failed: %+v", p)
	}
	if _, ok := w.Page("http://nowhere/"); ok {
		t.Fatal("phantom page")
	}
}

func TestHostDerivedFromURL(t *testing.T) {
	w := smallWeb()
	p, _ := w.Page("http://b.example.net/x")
	if p.Host != "b.example.net" {
		t.Fatalf("host = %q", p.Host)
	}
}

func TestSearchReturnsPages(t *testing.T) {
	w := smallWeb()
	hits := w.Search(`"new ceo"`, 10)
	if len(hits) != 1 || hits[0].URL != "http://a.example.com/1" {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestSearchTitleIsIndexed(t *testing.T) {
	w := smallWeb()
	hits := w.Search("merger", 10)
	if len(hits) != 1 || hits[0].URL != "http://b.example.net/x" {
		t.Fatalf("title terms not indexed: %+v", hits)
	}
}

func TestURLsInsertionOrder(t *testing.T) {
	w := smallWeb()
	urls := w.URLs()
	if urls[0] != "http://a.example.com/1" || urls[2] != "http://b.example.net/x" {
		t.Fatalf("order = %v", urls)
	}
}

func TestHosts(t *testing.T) {
	w := smallWeb()
	hosts := w.Hosts()
	if len(hosts) != 2 || hosts[0] != "a.example.com" || hosts[1] != "b.example.net" {
		t.Fatalf("hosts = %v", hosts)
	}
}

func TestSearchWithSnippets(t *testing.T) {
	w := New()
	w.AddPage(Page{URL: "u:long", Text: "One filler sentence sits here first. " +
		"Another filler line follows with more words to push the match away. " +
		"Acme named a new CEO on Friday after a search. Trailing text continues afterwards for a while longer."})
	res := w.SearchWithSnippets(`"new ceo"`, 5)
	if len(res) != 1 {
		t.Fatalf("results = %d", len(res))
	}
	sn := res[0].Snippet
	if !strings.Contains(sn, "new CEO") {
		t.Fatalf("snippet misses the match: %q", sn)
	}
	if !strings.HasPrefix(sn, "... ") || !strings.HasSuffix(sn, " ...") {
		t.Errorf("snippet not elided: %q", sn)
	}
	if len(strings.Fields(sn)) > 24 {
		t.Errorf("snippet too long: %q", sn)
	}
}

func TestSearchWithSnippetsFallback(t *testing.T) {
	w := New()
	// Query term appears in title only; snippet falls back to page head.
	w.AddPage(Page{URL: "u:t", Title: "merger special", Text: "Body text without the word."})
	res := w.SearchWithSnippets("merger", 5)
	if len(res) != 1 || res[0].Snippet == "" {
		t.Fatalf("fallback failed: %+v", res)
	}
}

func TestDuplicateURLPanics(t *testing.T) {
	w := smallWeb()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate URL")
		}
	}()
	w.AddPage(Page{URL: "http://a.example.com/1", Text: "again"})
}

func TestAddAfterFreezePanics(t *testing.T) {
	w := smallWeb()
	w.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on add after freeze")
		}
	}()
	w.AddPage(Page{URL: "http://c.example.org/", Text: "late"})
}

func TestEmptyURLPanics(t *testing.T) {
	w := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty URL")
		}
	}()
	w.AddPage(Page{Text: "no url"})
}

func TestAddPagesMatchesAddPage(t *testing.T) {
	pages := make([]Page, 60)
	for i := range pages {
		pages[i] = Page{
			URL:   fmt.Sprintf("http://bulk.example.com/%d", i),
			Title: fmt.Sprintf("Story %d", i),
			Text:  fmt.Sprintf("Company %d announced a merger and a new ceo on day %d", i%7, i),
			Links: []string{"http://bulk.example.com/0"},
		}
	}
	seq := New()
	for _, p := range pages {
		seq.AddPage(p)
	}
	seq.Freeze()

	bulk := New()
	bulk.AddPages(pages)
	bulk.Freeze()

	if seq.Len() != bulk.Len() {
		t.Fatalf("Len: %d vs %d", seq.Len(), bulk.Len())
	}
	if fmt.Sprint(seq.URLs()) != fmt.Sprint(bulk.URLs()) {
		t.Fatal("AddPages changed page order")
	}
	pageURLs := func(ps []*Page) []string {
		out := make([]string, len(ps))
		for i, p := range ps {
			out[i] = p.URL
		}
		return out
	}
	for _, q := range []string{`"new ceo"`, "merger", "company 3"} {
		a, b := pageURLs(seq.Search(q, 0)), pageURLs(bulk.Search(q, 0))
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("query %q: sequential %v vs bulk %v", q, a, b)
		}
	}
}

func TestAddPagesDuplicatePanics(t *testing.T) {
	w := New()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate URL in AddPages")
		}
	}()
	w.AddPages([]Page{
		{URL: "http://dup.example.com/", Text: "one"},
		{URL: "http://dup.example.com/", Text: "two"},
	})
}

func TestWithIndexOptions(t *testing.T) {
	w := New(WithIndexOptions(index.Options{Shards: 3, CacheSize: -1}))
	w.AddPage(Page{URL: "http://x.example.com/", Text: "merger news"})
	if got := w.Index().IndexStats().Shards; got != 3 {
		t.Fatalf("IndexStats().Shards = %d, want 3", got)
	}
	if hits := w.Search("merger", 0); len(hits) != 1 {
		t.Fatalf("search on sharded web: %v", hits)
	}
}

// TestWithEngineSegmentBacked drives the full persistent lifecycle
// through the web layer: a segment-backed web indexes, searches and
// ingests like the in-RAM one; after Close a new web over the reopened
// engine repairs its page table from the same pages without
// re-indexing (no duplicate-add panic, Ingest reports
// ErrDuplicatePage), and searches serve from the recovered segments.
func TestWithEngineSegmentBacked(t *testing.T) {
	dir := t.TempDir()
	open := func() *index.SegmentIndex {
		eng, err := index.OpenSegmentIndex(index.SegmentOptions{Dir: dir, FlushDocs: 2, Writers: 2})
		if err != nil {
			t.Fatalf("open segment index: %v", err)
		}
		return eng
	}

	w := New(WithEngine(open()))
	pages := []Page{
		{URL: "http://a.example.com/1", Title: "New CEO at Acme", Text: "Acme named a new CEO on Friday."},
		{URL: "http://a.example.com/2", Title: "Weather", Text: "The weather stayed pleasant."},
		{URL: "http://b.example.net/x", Title: "Merger news", Text: "IBM acquired Daksh in a landmark deal."},
	}
	w.AddPages(pages)
	w.Freeze()
	if err := w.Ingest(Page{URL: "http://c.example.org/s", Text: "streamed acquisition update"}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if hits := w.Search("acquisition", 0); len(hits) != 1 || hits[0].URL != "http://c.example.org/s" {
		t.Fatalf("pre-close search: %v", hits)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Restart: the engine recovers the four documents from the manifest;
	// the caller rebuilds the page table over it.
	eng := open()
	if eng.Len() != 4 {
		t.Fatalf("reopened engine holds %d docs, want 4", eng.Len())
	}
	w2 := New(WithEngine(eng))
	w2.AddPages(pages) // must repair the table without re-indexing
	w2.Freeze()
	err := w2.Ingest(Page{URL: "http://c.example.org/s", Text: "streamed acquisition update"})
	if !errors.Is(err, ErrDuplicatePage) {
		t.Fatalf("re-ingest of recovered doc: %v", err)
	}
	if w2.Len() != 4 {
		t.Fatalf("repaired table holds %d pages, want 4", w2.Len())
	}
	if p, ok := w2.Page("http://c.example.org/s"); !ok || p.Text != "streamed acquisition update" {
		t.Fatalf("repaired page lookup: %+v %v", p, ok)
	}
	if hits := w2.Search(`"new ceo"`, 10); len(hits) != 1 || hits[0].URL != "http://a.example.com/1" {
		t.Fatalf("post-restart search: %v", hits)
	}
	if st := w2.Index().IndexStats(); st.Segments == 0 {
		t.Fatalf("expected committed segments after restart, stats = %+v", st)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close reopened: %v", err)
	}
}

// TestIngestAfterFreeze covers the streaming path: a frozen web still
// accepts incremental pages, which become visible to lookups and
// searchable, while duplicates report ErrDuplicatePage instead of
// panicking.
func TestIngestAfterFreeze(t *testing.T) {
	w := New()
	w.AddPage(Page{URL: "http://a.example.com/1", Text: "seed page"})
	w.Freeze()

	if err := w.Ingest(Page{URL: "http://a.example.com/2", Text: "fresh merger announcement"}); err != nil {
		t.Fatalf("Ingest after Freeze: %v", err)
	}
	if w.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", w.Len())
	}
	if p, ok := w.Page("http://a.example.com/2"); !ok || p.Host != "a.example.com" {
		t.Fatalf("ingested page lookup: %v %v", p, ok)
	}
	if hits := w.Search("merger", 0); len(hits) != 1 || hits[0].URL != "http://a.example.com/2" {
		t.Fatalf("ingested page not searchable: %v", hits)
	}

	err := w.Ingest(Page{URL: "http://a.example.com/2", Text: "fresh merger announcement"})
	if !errors.Is(err, ErrDuplicatePage) {
		t.Fatalf("duplicate ingest: %v", err)
	}
	if w.Len() != 2 {
		t.Fatalf("duplicate ingest changed Len to %d", w.Len())
	}
	if err := w.Ingest(Page{Text: "no url"}); err == nil {
		t.Fatal("ingest without URL accepted")
	}
}

// TestIngestConcurrentWithReaders drives Ingest from several
// goroutines while readers hammer Page/Search/URLs — the -race guard
// for the streaming web.
func TestIngestConcurrentWithReaders(t *testing.T) {
	w := New()
	w.AddPage(Page{URL: "http://c.example.com/seed", Text: "seed acquisition story"})
	w.Freeze()

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Page("http://c.example.com/seed")
				w.Search("acquisition", 5)
				w.URLs()
				w.Len()
			}
		}()
	}
	var iwg sync.WaitGroup
	for g := 0; g < writers; g++ {
		iwg.Add(1)
		go func(g int) {
			defer iwg.Done()
			for i := 0; i < perWriter; i++ {
				url := fmt.Sprintf("http://c.example.com/%d-%d", g, i)
				if err := w.Ingest(Page{URL: url, Text: "acquisition update"}); err != nil {
					t.Errorf("Ingest %s: %v", url, err)
				}
			}
		}(g)
	}
	iwg.Wait()
	close(stop)
	wg.Wait()
	if got := w.Len(); got != 1+writers*perWriter {
		t.Fatalf("Len() = %d, want %d", got, 1+writers*perWriter)
	}
	if hits := w.Search("acquisition", 0); len(hits) != 1+writers*perWriter {
		t.Fatalf("search sees %d pages", len(hits))
	}
}
