// Fetcher seam: the crawler reaches pages through a narrow interface
// rather than the Web's map directly, so a fault-injecting (or, later,
// a real network) implementation can slot in without touching the
// crawl logic. The FaultFetcher here is the deterministic chaos layer:
// seeded per-URL transient errors, dead links, and latency make every
// failure path reproducible in tests.
package web

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Fetcher resolves a URL to a page. Implementations may fail
// transiently (retryable — see IsTransient) or permanently
// (ErrNotFound), and must honour context cancellation for slow
// fetches. The Web itself is the always-reliable implementation.
type Fetcher interface {
	// Fetch returns the page behind url or an error.
	Fetch(ctx context.Context, url string) (*Page, error)
}

// ErrNotFound reports a URL with no page behind it — a permanent
// failure that no amount of retrying can fix.
var ErrNotFound = errors.New("web: page not found")

// TransientError is a retryable fetch failure: the page exists but
// this attempt did not reach it (injected fault, flaky host).
type TransientError struct {
	// URL is the fetch target.
	URL string
	// Attempt is the 1-based attempt count the injector has seen for
	// this URL.
	Attempt int
}

// Error implements error.
func (e *TransientError) Error() string {
	return fmt.Sprintf("web: transient fetch failure for %s (attempt %d)", e.URL, e.Attempt)
}

// IsTransient reports whether err is worth retrying: a transient
// failure or an attempt that ran out of time (context deadline).
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// Fetch implements Fetcher over the page store: a lookup never fails
// transiently, and a missing page is ErrNotFound.
func (w *Web) Fetch(_ context.Context, url string) (*Page, error) {
	p, ok := w.Page(url)
	if !ok {
		return nil, fmt.Errorf("%s: %w", url, ErrNotFound)
	}
	return p, nil
}

// FaultConfig tunes deterministic fault injection. Which URLs fail,
// how often, and how slowly is a pure function of (Seed, URL), so the
// same configuration reproduces the same fault pattern run after run.
type FaultConfig struct {
	// Seed drives the per-URL fault assignment.
	Seed int64
	// TransientRate is the fraction of URLs in [0,1] that fail with a
	// TransientError a bounded number of times before succeeding.
	TransientRate float64
	// MaxTransient caps consecutive transient failures per faulty URL;
	// each faulty URL fails a deterministic count in [1, MaxTransient]
	// and then succeeds. 0 means 2.
	MaxTransient int
	// PermanentRate is the fraction of URLs that always fail (dead
	// links / gone hosts). Drawn before the transient band, so the two
	// rates are additive and must sum to at most 1.
	PermanentRate float64
	// Latency is injected before every attempt on a faulty URL
	// (honouring context cancellation), simulating slow hosts; 0 adds
	// none.
	Latency time.Duration
}

// FaultFetcher wraps a Fetcher with seeded fault injection so crawl
// failure paths are testable and reproducible. Safe for concurrent
// use.
type FaultFetcher struct {
	next Fetcher
	cfg  FaultConfig

	mu       sync.Mutex
	attempts map[string]int
}

// NewFaultFetcher wraps next with the configured fault injection.
func NewFaultFetcher(next Fetcher, cfg FaultConfig) *FaultFetcher {
	if cfg.MaxTransient <= 0 {
		cfg.MaxTransient = 2
	}
	return &FaultFetcher{next: next, cfg: cfg, attempts: make(map[string]int)}
}

// Fetch implements Fetcher: faulty URLs pay the injected latency and
// fail (permanently, or transiently until their per-URL failure budget
// is spent); clean URLs pass straight through.
func (f *FaultFetcher) Fetch(ctx context.Context, url string) (*Page, error) {
	band, sub := f.roll(url)
	permanent := band < f.cfg.PermanentRate
	transient := !permanent && band < f.cfg.PermanentRate+f.cfg.TransientRate
	if (permanent || transient) && f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if permanent {
		return nil, fmt.Errorf("%s: host gone: %w", url, ErrNotFound)
	}
	if transient {
		f.mu.Lock()
		f.attempts[url]++
		n := f.attempts[url]
		f.mu.Unlock()
		fails := 1 + int(sub*float64(f.cfg.MaxTransient))
		if fails > f.cfg.MaxTransient {
			fails = f.cfg.MaxTransient
		}
		if n <= fails {
			return nil, &TransientError{URL: url, Attempt: n}
		}
	}
	return f.next.Fetch(ctx, url)
}

// roll derives two independent uniforms in [0,1) from (seed, url): the
// first picks the fault band, the second the per-URL failure count.
// The FNV sum gets a murmur-style finalizer: URLs that differ only in
// their last characters leave FNV's low bits barely mixed (the prime
// mod 2³² is small), which would cluster sibling URLs into one band.
func (f *FaultFetcher) roll(url string) (band, sub float64) {
	h := fnv.New64a()
	var seed [8]byte
	s := uint64(f.cfg.Seed)
	for i := range seed {
		seed[i] = byte(s >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(url))
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	const m = 1 << 32
	return float64(uint32(v)) / m, float64(uint32(v>>32)) / m
}
