package web

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func faultWeb(n int) *Web {
	w := New()
	for i := 0; i < n; i++ {
		w.AddPage(Page{URL: fmt.Sprintf("http://h%d.example.com/p", i), Text: fmt.Sprintf("page %d", i)})
	}
	return w
}

func TestWebFetch(t *testing.T) {
	w := faultWeb(1)
	p, err := w.Fetch(context.Background(), "http://h0.example.com/p")
	if err != nil || p.Text != "page 0" {
		t.Fatalf("fetch: %v %v", p, err)
	}
	if _, err := w.Fetch(context.Background(), "u:missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing page error = %v", err)
	}
}

func TestFaultFetcherDeterministic(t *testing.T) {
	w := faultWeb(40)
	cfg := FaultConfig{Seed: 7, TransientRate: 0.4, MaxTransient: 3, PermanentRate: 0.1}
	outcome := func() []string {
		f := NewFaultFetcher(w, cfg)
		var out []string
		for _, u := range w.URLs() {
			// Hammer each URL a few times to expose the full
			// transient-then-success sequence.
			for k := 0; k < 5; k++ {
				_, err := f.Fetch(context.Background(), u)
				out = append(out, fmt.Sprint(err))
			}
		}
		return out
	}
	a, b := outcome(), outcome()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault pattern not deterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFaultFetcherTransientThenSuccess(t *testing.T) {
	w := faultWeb(60)
	f := NewFaultFetcher(w, FaultConfig{Seed: 3, TransientRate: 1, MaxTransient: 3})
	for _, u := range w.URLs() {
		fails := 0
		for {
			_, err := f.Fetch(context.Background(), u)
			if err == nil {
				break
			}
			var te *TransientError
			if !errors.As(err, &te) {
				t.Fatalf("%s: unexpected error %v", u, err)
			}
			if !IsTransient(err) {
				t.Fatalf("transient error not classified as transient: %v", err)
			}
			fails++
			if fails > 3 {
				t.Fatalf("%s: more than MaxTransient failures", u)
			}
		}
		if fails == 0 {
			t.Fatalf("%s: TransientRate 1 produced no failure", u)
		}
		// Once recovered, the URL stays healthy.
		if _, err := f.Fetch(context.Background(), u); err != nil {
			t.Fatalf("%s: relapsed after recovery: %v", u, err)
		}
	}
}

func TestFaultFetcherPermanent(t *testing.T) {
	w := faultWeb(10)
	f := NewFaultFetcher(w, FaultConfig{Seed: 1, PermanentRate: 1})
	for _, u := range w.URLs() {
		for k := 0; k < 3; k++ {
			if _, err := f.Fetch(context.Background(), u); !errors.Is(err, ErrNotFound) {
				t.Fatalf("%s attempt %d: want permanent ErrNotFound, got %v", u, k, err)
			}
		}
	}
}

func TestFaultFetcherRateRoughlyHolds(t *testing.T) {
	w := faultWeb(400)
	f := NewFaultFetcher(w, FaultConfig{Seed: 11, TransientRate: 0.3})
	faulty := 0
	for _, u := range w.URLs() {
		if _, err := f.Fetch(context.Background(), u); err != nil {
			faulty++
		}
	}
	frac := float64(faulty) / 400
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("30%% transient rate produced %.0f%% faulty URLs", frac*100)
	}
}

func TestFaultFetcherLatencyHonoursContext(t *testing.T) {
	w := faultWeb(1)
	f := NewFaultFetcher(w, FaultConfig{Seed: 1, TransientRate: 1, Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := f.Fetch(ctx, w.URLs()[0])
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("latency injection ignored the context deadline")
	}
	if !IsTransient(err) {
		t.Fatal("attempt timeout must be retryable")
	}
}
