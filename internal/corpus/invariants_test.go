package corpus

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: for any small configuration, every generated document is
// well-formed — non-empty sentences, a title, a valid URL on a known
// host, valid links, and trigger labels consistent with its kind.
func TestWorldPropertyWellFormed(t *testing.T) {
	f := func(seed int64, rel, bg uint8) bool {
		cfg := Config{
			Seed:                  seed,
			RelevantPerDriver:     1 + int(rel)%8,
			BackgroundDocs:        1 + int(bg)%20,
			HardNegativePerDriver: 1,
			FamousEventDocs:       1,
		}
		docs := NewGenerator(cfg).World()
		urls := map[string]bool{}
		for _, d := range docs {
			urls[d.URL] = true
		}
		for _, d := range docs {
			if d.ID == "" || d.Title == "" || !strings.HasPrefix(d.URL, "http://") {
				return false
			}
			if len(d.Sentences) == 0 {
				return false
			}
			for _, s := range d.Sentences {
				if strings.TrimSpace(s.Text) == "" {
					return false
				}
				if s.Driver != "" && s.Misleading {
					return false // a sentence is a trigger or a near-miss, never both
				}
			}
			for _, l := range d.Links {
				if !urls[l] || l == d.URL {
					return false
				}
			}
			switch d.Kind {
			case KindRelevant:
				if d.TriggerCount(d.Driver) == 0 {
					return false
				}
			case KindBackground, KindHardNegative:
				for _, drv := range Drivers {
					if d.TriggerCount(drv) != 0 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: trigger sentences always carry their subject company, and
// the company string appears in the sentence text (possibly as a prefix
// of a longer org mention).
func TestTriggerPropertyCompanyInText(t *testing.T) {
	g := NewGenerator(Config{Seed: 99})
	for i := 0; i < 100; i++ {
		for _, d := range Drivers {
			s := g.trigger(d, g.company(), i%2 == 0)
			if s.Company == "" {
				t.Fatalf("trigger without company: %+v", s)
			}
			if !strings.Contains(s.Text, s.Company) {
				t.Fatalf("company %q absent from %q", s.Company, s.Text)
			}
		}
	}
}

// Property: famous-event documents always carry triggers for both pinned
// organizations.
func TestFamousEventDocProperty(t *testing.T) {
	g := NewGenerator(Config{Seed: 100})
	for _, pair := range FamousPairs() {
		doc := g.FamousEventDoc(pair)
		if doc.Kind != KindRelevant || doc.Driver != MergersAcquisitions {
			t.Fatalf("famous doc misclassified: %+v", doc.Kind)
		}
		if doc.Company != pair[0] {
			t.Errorf("subject company = %q, want %q", doc.Company, pair[0])
		}
		text := doc.Text()
		if !strings.Contains(text, pair[0]) || !strings.Contains(text, pair[1]) {
			t.Errorf("famous pair %v not both mentioned", pair)
		}
	}
}

func TestRenderHTMLRoundTripsAllKinds(t *testing.T) {
	g := NewGenerator(Config{Seed: 101})
	docs := []Document{
		g.RelevantDoc(ChangeInManagement),
		g.HardNegativeDoc(RevenueGrowth),
		g.BackgroundDoc(),
	}
	for _, d := range docs {
		html := RenderHTML(&d)
		if !strings.Contains(html, "<article>") || !strings.Contains(html, "</html>") {
			t.Errorf("%s: malformed HTML", d.ID)
		}
		for _, s := range d.Sentences {
			if !strings.Contains(html, escape(s.Text)) {
				t.Errorf("%s: sentence missing from HTML: %q", d.ID, s.Text)
			}
		}
	}
}
