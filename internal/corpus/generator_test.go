package corpus

import (
	"strings"
	"testing"

	"etap/internal/ner"
	"etap/internal/textproc"
)

func TestWorldDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, RelevantPerDriver: 5, BackgroundDocs: 10, HardNegativePerDriver: 2}
	a := NewGenerator(cfg).World()
	b := NewGenerator(cfg).World()
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Text() != b[i].Text() || a[i].URL != b[i].URL {
			t.Fatalf("doc %d differs between identical seeds", i)
		}
		if len(a[i].Links) != len(b[i].Links) {
			t.Fatalf("doc %d link counts differ", i)
		}
	}
}

func TestWorldComposition(t *testing.T) {
	cfg := Config{Seed: 1, RelevantPerDriver: 10, BackgroundDocs: 20, HardNegativePerDriver: 5, FamousEventDocs: 2}
	docs := NewGenerator(cfg).World()
	counts := map[DocKind]int{}
	for _, d := range docs {
		counts[d.Kind]++
	}
	// 10 per driver x 3 drivers + 2 famous-event pages x 5 pairs.
	if counts[KindRelevant] != 40 {
		t.Errorf("relevant = %d, want 40", counts[KindRelevant])
	}
	if counts[KindBackground] != 20 {
		t.Errorf("background = %d, want 20", counts[KindBackground])
	}
	if counts[KindHardNegative] != 15 {
		t.Errorf("hard negative = %d, want 15", counts[KindHardNegative])
	}
}

func TestRelevantDocHasTriggersAndNoise(t *testing.T) {
	g := NewGenerator(Config{Seed: 2})
	for _, d := range Drivers {
		doc := g.RelevantDoc(d)
		if doc.TriggerCount(d) < 2 {
			t.Errorf("%s: only %d triggers", d, doc.TriggerCount(d))
		}
		nonTrigger := 0
		for _, s := range doc.Sentences {
			if s.Driver == "" {
				nonTrigger++
			}
		}
		if nonTrigger < 2 {
			t.Errorf("%s: only %d non-trigger sentences (Figure 6 needs noise on relevant pages)", d, nonTrigger)
		}
		if doc.Company == "" {
			t.Errorf("%s: no subject company", d)
		}
	}
}

func TestBackgroundDocHasNoTriggers(t *testing.T) {
	g := NewGenerator(Config{Seed: 3})
	for i := 0; i < 20; i++ {
		doc := g.BackgroundDoc()
		for _, drv := range Drivers {
			if doc.TriggerCount(drv) != 0 {
				t.Fatalf("background doc has a %s trigger", drv)
			}
		}
	}
}

func TestHardNegativeDocMisleadingOnly(t *testing.T) {
	g := NewGenerator(Config{Seed: 4})
	doc := g.HardNegativeDoc(ChangeInManagement)
	if doc.TriggerCount(ChangeInManagement) != 0 {
		t.Fatal("hard negative contains a real trigger")
	}
	misleading := 0
	for _, s := range doc.Sentences {
		if s.Misleading {
			misleading++
		}
	}
	if misleading < 2 {
		t.Errorf("only %d misleading sentences", misleading)
	}
}

func TestLinksPointAtRealDocs(t *testing.T) {
	cfg := Config{Seed: 5, RelevantPerDriver: 5, BackgroundDocs: 10, HardNegativePerDriver: 2}
	docs := NewGenerator(cfg).World()
	byURL := map[string]bool{}
	for _, d := range docs {
		byURL[d.URL] = true
	}
	for _, d := range docs {
		if len(d.Links) == 0 {
			t.Errorf("%s has no links", d.ID)
		}
		for _, l := range d.Links {
			if !byURL[l] {
				t.Errorf("%s links to nonexistent %s", d.ID, l)
			}
			if l == d.URL {
				t.Errorf("%s links to itself", d.ID)
			}
		}
	}
}

func TestDocumentTextSplitsBackToSentences(t *testing.T) {
	// The rule-based chunker must recover the generated sentence
	// boundaries; the whole pipeline depends on this agreement.
	g := NewGenerator(Config{Seed: 6})
	for _, drv := range Drivers {
		doc := g.RelevantDoc(drv)
		got := textproc.SplitSentences(doc.Text())
		if len(got) != len(doc.Sentences) {
			var gotTexts []string
			for _, s := range got {
				gotTexts = append(gotTexts, s.Text)
			}
			t.Errorf("%s: chunker found %d sentences, generator wrote %d\nchunker: %q",
				drv, len(got), len(doc.Sentences), gotTexts)
		}
	}
}

func TestTriggerSentencesCarryEntities(t *testing.T) {
	// Trigger sentences must be NER-annotatable: M&A triggers carry ORG,
	// CiM triggers carry DESIG, RG triggers carry PRCNT or CURRENCY
	// (most of the time — unknown-entity draws are allowed).
	g := NewGenerator(Config{Seed: 7, UnknownEntityRate: 0.0001})
	rec := ner.NewRecognizer()
	check := func(d Driver, want ner.Category) {
		hits := 0
		for i := 0; i < 30; i++ {
			s := g.trigger(d, g.company(), false)
			for _, e := range rec.RecognizeText(s.Text) {
				if e.Category == want {
					hits++
					break
				}
			}
		}
		if hits < 24 {
			t.Errorf("%s: only %d/30 triggers carry %s", d, hits, want)
		}
	}
	check(MergersAcquisitions, ner.ORG)
	check(ChangeInManagement, ner.DESIG)
	check(RevenueGrowth, ner.ORG)
}

func TestPurePositives(t *testing.T) {
	g := NewGenerator(Config{Seed: 8})
	snips := g.PurePositives(MergersAcquisitions, 20)
	if len(snips) != 20 {
		t.Fatalf("got %d", len(snips))
	}
	for _, s := range snips {
		if s.Driver != MergersAcquisitions {
			t.Errorf("wrong driver %q", s.Driver)
		}
		if s.Company == "" {
			t.Error("no company")
		}
		if s.Text == "" {
			t.Error("empty text")
		}
	}
}

func TestPurePositivesUseHeldoutTemplates(t *testing.T) {
	// No pure positive snippet may be a realization of a training
	// template: check that the distinctive training verbs cannot all
	// appear. We verify structurally: held-out templates differ from
	// training ones, so each snippet must contain one of the held-out
	// skeleton fragments.
	g := NewGenerator(Config{Seed: 9})
	fragments := []string{
		"in cash", "creates the largest firm", "swallowed rival",
		"Analysts expect", "outbid competitors", "Regulators cleared",
		"is now part of", "tie-up reshapes",
	}
	for _, s := range g.PurePositives(MergersAcquisitions, 30) {
		found := false
		for _, f := range fragments {
			if strings.Contains(s.Text, f) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("snippet does not match any held-out template: %q", s.Text)
		}
	}
}

func TestBackgroundSnippets(t *testing.T) {
	g := NewGenerator(Config{Seed: 10})
	snips := g.BackgroundSnippets(50)
	if len(snips) != 50 {
		t.Fatalf("got %d", len(snips))
	}
	for _, s := range snips {
		if s.Driver != "" {
			t.Errorf("background snippet labeled %q", s.Driver)
		}
	}
}

func TestMisleadingSnippets(t *testing.T) {
	g := NewGenerator(Config{Seed: 11})
	snips := g.MisleadingSnippets(ChangeInManagement, 10)
	for _, s := range snips {
		if s.Driver != "" {
			t.Errorf("misleading snippet labeled positive: %q", s.Text)
		}
	}
}

func TestContainsTriggerAndCompanies(t *testing.T) {
	g := NewGenerator(Config{Seed: 12})
	doc := g.RelevantDoc(MergersAcquisitions)
	var trig Sentence
	for _, s := range doc.Sentences {
		if s.Driver == MergersAcquisitions {
			trig = s
			break
		}
	}
	window := trig.Text + " " + "Unrelated tail sentence."
	if !doc.ContainsTrigger(window, MergersAcquisitions) {
		t.Error("trigger not found in window containing it")
	}
	if doc.ContainsTrigger("Totally unrelated text.", MergersAcquisitions) {
		t.Error("false positive trigger detection")
	}
	companies := doc.TriggerCompanies(window, MergersAcquisitions)
	if len(companies) != 1 || companies[0] != trig.Company {
		t.Errorf("companies = %v, want [%s]", companies, trig.Company)
	}
}

func TestUnknownEntityRateZeroKeepsGazetteerNames(t *testing.T) {
	g := NewGenerator(Config{Seed: 13, UnknownEntityRate: 0.0001})
	rec := ner.NewRecognizer()
	misses := 0
	for i := 0; i < 40; i++ {
		c := g.company()
		ents := rec.RecognizeText("Analysts said " + c + " performed well.")
		found := false
		for _, e := range ents {
			if e.Category == ner.ORG {
				found = true
			}
		}
		if !found {
			misses++
		}
	}
	if misses > 2 {
		t.Errorf("NER missed %d/40 gazetteer companies", misses)
	}
}

func TestOrientationPhraseAccessors(t *testing.T) {
	pos := PositivePhrases()
	neg := NegativePhrases()
	if len(pos) == 0 || len(neg) == 0 {
		t.Fatal("empty phrase lists")
	}
	pos[0] = "mutated"
	if PositivePhrases()[0] == "mutated" {
		t.Error("accessor returned aliased slice")
	}
}

func BenchmarkWorld(b *testing.B) {
	cfg := Config{Seed: 20, RelevantPerDriver: 20, BackgroundDocs: 50, HardNegativePerDriver: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGenerator(cfg).World()
	}
}
