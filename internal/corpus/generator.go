package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"etap/internal/gazetteer"
)

// DocKind classifies a generated document.
type DocKind uint8

const (
	// KindRelevant pages carry trigger events for one driver, mixed with
	// noise — the pages smart queries surface (Figure 5).
	KindRelevant DocKind = iota
	// KindBackground pages carry no driver content at all.
	KindBackground
	// KindHardNegative pages discuss a driver's vocabulary without any
	// actual trigger event (biography pages, M&A consulting pages).
	KindHardNegative
)

// Sentence is one generated sentence with its ground truth.
type Sentence struct {
	Text string
	// Driver is the sales driver this sentence is a trigger event for,
	// or "" for non-trigger sentences.
	Driver Driver
	// Misleading marks non-trigger sentences deliberately built to
	// resemble a driver's trigger events.
	Misleading bool
	// Company is the canonical subject company of a trigger sentence.
	Company string
}

// Document is a generated Web page with per-sentence ground truth.
type Document struct {
	ID     string
	URL    string
	Host   string
	Title  string
	Kind   DocKind
	Driver Driver // the focus driver for relevant/hard-negative docs
	// Company is the canonical subject company of a relevant document.
	Company   string
	Sentences []Sentence
	Links     []string // URLs of other documents
}

// Text renders the full document body (sentences joined by spaces).
func (d *Document) Text() string {
	parts := make([]string, len(d.Sentences))
	for i, s := range d.Sentences {
		parts[i] = s.Text
	}
	return strings.Join(parts, " ")
}

// Config sizes the synthetic web.
type Config struct {
	// Seed drives all randomness; equal seeds produce identical worlds.
	Seed int64
	// RelevantPerDriver is the number of relevant pages per driver;
	// 0 means 120.
	RelevantPerDriver int
	// BackgroundDocs is the number of pure-background pages; 0 means 400.
	BackgroundDocs int
	// HardNegativePerDriver is the number of near-miss pages per driver;
	// 0 means 40.
	HardNegativePerDriver int
	// UnknownEntityRate is the probability that a generated company or
	// person is out-of-gazetteer (invisible to the NER); 0 means 0.12.
	UnknownEntityRate float64
	// FamousEventDocs is the number of pages covering each famous
	// acquisition (the recent events behind smart queries like
	// "IBM Daksh"); 0 means 8.
	FamousEventDocs int
}

// famousPairs are the well-known acquisitions the paper queries by name:
// "if one queries the Web with 'IBM Daksh', most of the documents that
// are returned, are about the recent IBM acquisition of Daksh." Each pair
// receives a cluster of dedicated pages in the generated world.
var famousPairs = [][2]string{
	{"IBM", "Daksh"},
	{"Coors", "Molson"},
	{"JobsAhead", "Monster"},
	{"Oracle", "PeopleSoft"},
	{"Alcatel", "Lucent"},
}

// FamousPairs returns the acquirer/acquired pairs that have dedicated
// coverage in the world (exported so the training specs can query them).
func FamousPairs() [][2]string {
	out := make([][2]string, len(famousPairs))
	copy(out, famousPairs)
	return out
}

func (c Config) withDefaults() Config {
	if c.RelevantPerDriver == 0 {
		c.RelevantPerDriver = 120
	}
	if c.BackgroundDocs == 0 {
		c.BackgroundDocs = 400
	}
	if c.HardNegativePerDriver == 0 {
		c.HardNegativePerDriver = 40
	}
	if c.UnknownEntityRate == 0 {
		c.UnknownEntityRate = 0.12
	}
	if c.FamousEventDocs == 0 {
		c.FamousEventDocs = 8
	}
	return c
}

// hosts of the synthetic web. Relevant pages concentrate on the news
// hosts; backgrounds are spread everywhere.
var hosts = []string{
	"biznews.example.com", "pressdesk.example.net", "tradejournal.example.org",
	"marketwatchers.example.com", "dailyledger.example.net",
	"cityliving.example.org", "sportsroundup.example.com", "travelog.example.net",
}

// Generator produces documents and snippets deterministically.
type Generator struct {
	cfg Config
	rng *rand.Rand
	seq int
}

// NewGenerator builds a seeded generator.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// World generates the full synthetic web: relevant pages for every
// driver, hard negatives, and background pages, with a hyperlink graph.
func (g *Generator) World() []Document {
	var docs []Document
	for _, d := range Drivers {
		for i := 0; i < g.cfg.RelevantPerDriver; i++ {
			docs = append(docs, g.RelevantDoc(d))
		}
		for i := 0; i < g.cfg.HardNegativePerDriver; i++ {
			docs = append(docs, g.HardNegativeDoc(d))
		}
	}
	for _, pair := range famousPairs {
		for i := 0; i < g.cfg.FamousEventDocs; i++ {
			docs = append(docs, g.FamousEventDoc(pair))
		}
	}
	for i := 0; i < g.cfg.BackgroundDocs; i++ {
		docs = append(docs, g.BackgroundDoc())
	}
	g.linkDocs(docs)
	return docs
}

// FamousEventDoc generates one page covering a famous acquisition: M&A
// trigger sentences with both organizations pinned, plus the usual noise.
func (g *Generator) FamousEventDoc(pair [2]string) Document {
	var sents []Sentence
	for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
		pool := trainTemplates[MergersAcquisitions]
		tpl := pool[g.rng.Intn(len(pool))]
		sents = append(sents, Sentence{
			Text:    g.fillPinned(tpl, pair[0], pair[1]),
			Driver:  MergersAcquisitions,
			Company: pair[0],
		})
	}
	for i, n := 0, 1+g.rng.Intn(2); i < n; i++ {
		sents = append(sents, g.misleading(MergersAcquisitions))
	}
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		sents = append(sents, g.noise())
	}
	g.rng.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
	sents = append(sents, g.boilerplate())
	return g.newDoc(KindRelevant, MergersAcquisitions, pair[0], sents, g.rng.Intn(5))
}

// linkDocs wires a random hyperlink graph: every page links to 2-5
// others, biased toward pages on the same host (site navigation).
func (g *Generator) linkDocs(docs []Document) {
	byHost := map[string][]int{}
	for i, d := range docs {
		byHost[d.Host] = append(byHost[d.Host], i)
	}
	for i := range docs {
		n := 2 + g.rng.Intn(4)
		seen := map[int]bool{i: true}
		for k := 0; k < n; k++ {
			var j int
			if g.rng.Float64() < 0.6 {
				peers := byHost[docs[i].Host]
				j = peers[g.rng.Intn(len(peers))]
			} else {
				j = g.rng.Intn(len(docs))
			}
			if seen[j] {
				continue
			}
			seen[j] = true
			docs[i].Links = append(docs[i].Links, docs[j].URL)
		}
		// Guarantee connectivity: every page links somewhere.
		for len(docs[i].Links) == 0 && len(docs) > 1 {
			j := g.rng.Intn(len(docs))
			if j == i {
				continue
			}
			docs[i].Links = append(docs[i].Links, docs[j].URL)
		}
	}
}

// RelevantDoc generates one page relevant to driver d: a subject company,
// 2-4 trigger sentences, plus misleading, neutral and noise sentences in
// shuffled order (mirroring Figures 5 and 6: the same page holds both
// valid trigger events and invalid sentences).
func (g *Generator) RelevantDoc(d Driver) Document {
	company := g.company()
	var sents []Sentence

	nTrig := 2 + g.rng.Intn(3)
	for i := 0; i < nTrig; i++ {
		sents = append(sents, g.trigger(d, company, false))
	}
	nMislead := 1 + g.rng.Intn(3)
	for i := 0; i < nMislead; i++ {
		sents = append(sents, g.misleading(d))
	}
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		sents = append(sents, g.neutral())
	}
	for i, n := 0, 1+g.rng.Intn(3); i < n; i++ {
		sents = append(sents, g.noise())
	}
	g.rng.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
	// Boilerplate frames the page.
	sents = append(sents, g.boilerplate())

	doc := g.newDoc(KindRelevant, d, company, sents, g.rng.Intn(5)) // news hosts 0-4
	return doc
}

// HardNegativeDoc generates a page full of near-miss content for d.
func (g *Generator) HardNegativeDoc(d Driver) Document {
	var sents []Sentence
	for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
		sents = append(sents, g.misleading(d))
	}
	for i, n := 0, 2+g.rng.Intn(3); i < n; i++ {
		sents = append(sents, g.neutral())
	}
	for i, n := 0, 1+g.rng.Intn(2); i < n; i++ {
		sents = append(sents, g.noise())
	}
	g.rng.Shuffle(len(sents), func(i, j int) { sents[i], sents[j] = sents[j], sents[i] })
	sents = append(sents, g.boilerplate())
	return g.newDoc(KindHardNegative, d, "", sents, g.rng.Intn(len(hosts)))
}

// BackgroundDoc generates a page with no driver content. Sentences within
// one page never repeat verbatim (real pages do not stutter).
func (g *Generator) BackgroundDoc() Document {
	var sents []Sentence
	seen := map[string]bool{}
	for i, n := 0, 3+g.rng.Intn(5); i < n; i++ {
		var s Sentence
		for tries := 0; tries < 10; tries++ {
			if g.rng.Float64() < 0.35 {
				s = g.neutral()
			} else {
				s = g.noise()
			}
			if !seen[s.Text] {
				break
			}
		}
		seen[s.Text] = true
		sents = append(sents, s)
	}
	if g.rng.Float64() < 0.5 {
		sents = append(sents, g.boilerplate())
	}
	return g.newDoc(KindBackground, "", "", sents, g.rng.Intn(len(hosts)))
}

func (g *Generator) newDoc(kind DocKind, d Driver, company string, sents []Sentence, hostIdx int) Document {
	g.seq++
	id := fmt.Sprintf("doc-%05d", g.seq)
	host := hosts[hostIdx]
	title := strings.TrimSuffix(sents[0].Text, ".")
	if len(title) > 60 {
		title = title[:60]
	}
	title = strings.TrimSpace(title)
	return Document{
		ID:        id,
		URL:       fmt.Sprintf("http://%s/%s", host, id),
		Host:      host,
		Title:     title,
		Kind:      kind,
		Driver:    d,
		Company:   company,
		Sentences: sents,
	}
}

// --- sentence realization ----------------------------------------------

// trigger realizes one trigger sentence for d about company. heldout
// selects the held-out template pool.
func (g *Generator) trigger(d Driver, company string, heldout bool) Sentence {
	pool := trainTemplates[d]
	if heldout {
		pool = heldoutTemplates[d]
	}
	tpl := pool[g.rng.Intn(len(pool))]
	return Sentence{
		Text:    g.fill(tpl, company),
		Driver:  d,
		Company: company,
	}
}

func (g *Generator) misleading(d Driver) Sentence {
	pool := misleadingTemplates[d]
	tpl := pool[g.rng.Intn(len(pool))]
	return Sentence{Text: g.fill(tpl, ""), Misleading: true}
}

func (g *Generator) neutral() Sentence {
	tpl := neutralBusinessTemplates[g.rng.Intn(len(neutralBusinessTemplates))]
	return Sentence{Text: g.fill(tpl, "")}
}

func (g *Generator) noise() Sentence {
	tpl := noiseTemplates[g.rng.Intn(len(noiseTemplates))]
	return Sentence{Text: g.fill(tpl, "")}
}

func (g *Generator) boilerplate() Sentence {
	tpl := boilerplateTemplates[g.rng.Intn(len(boilerplateTemplates))]
	return Sentence{Text: g.fill(tpl, "")}
}

// company draws a company name: usually gazetteer core + suffix, sometimes
// a well-known org, sometimes out-of-gazetteer (NER-invisible).
func (g *Generator) company() string {
	r := g.rng.Float64()
	switch {
	case r < g.cfg.UnknownEntityRate:
		// Unknown core without a suffix: the NER cannot see it.
		return gazetteer.UnknownOrgCores[g.rng.Intn(len(gazetteer.UnknownOrgCores))]
	case r < g.cfg.UnknownEntityRate+0.15:
		return gazetteer.KnownOrgs[g.rng.Intn(len(gazetteer.KnownOrgs))]
	default:
		core := gazetteer.CompanyCores[g.rng.Intn(len(gazetteer.CompanyCores))]
		suffix := gazetteer.CompanySuffixes[g.rng.Intn(len(gazetteer.CompanySuffixes))]
		return core + " " + suffix
	}
}

// commonDesignations are the titles that dominate management-change news;
// sampling is biased toward them so that smart queries like "new ceo"
// behave as the paper describes (high-yield, high-precision).
var commonDesignations = []string{
	"CEO", "CTO", "CFO", "President", "Chairman", "Managing Director",
}

func (g *Generator) designation() string {
	if g.rng.Float64() < 0.55 {
		return commonDesignations[g.rng.Intn(len(commonDesignations))]
	}
	return gazetteer.Designations[g.rng.Intn(len(gazetteer.Designations))]
}

func (g *Generator) person() string {
	first := gazetteer.FirstNames[g.rng.Intn(len(gazetteer.FirstNames))]
	if g.rng.Float64() < g.cfg.UnknownEntityRate {
		return first + " " + gazetteer.UnknownSurnames[g.rng.Intn(len(gazetteer.UnknownSurnames))]
	}
	return first + " " + gazetteer.LastNames[g.rng.Intn(len(gazetteer.LastNames))]
}

// fill expands placeholders in tpl. company, when non-empty, pins {ORG1}.
func (g *Generator) fill(tpl, company string) string {
	org1 := company
	if org1 == "" {
		org1 = g.company()
	}
	org2 := g.company()
	for org2 == org1 {
		org2 = g.company()
	}
	return g.fillWith(tpl, org1, org2)
}

// fillPinned expands placeholders with both organizations fixed.
func (g *Generator) fillPinned(tpl, org1, org2 string) string {
	return g.fillWith(tpl, org1, org2)
}

func (g *Generator) fillWith(tpl, org1, org2 string) string {
	prsn := g.person()
	prsn2 := g.person()
	for prsn2 == prsn {
		prsn2 = g.person()
	}
	year := 1980 + g.rng.Intn(25)
	year2 := year + 1 + g.rng.Intn(10)
	if year2 > 2005 {
		year2 = 2005
	}

	replacements := []struct{ ph, val string }{
		{"{ORG1}", org1},
		{"{ORG2}", org2},
		{"{PRSN2}", prsn2},
		{"{PRSN}", prsn},
		{"{DESIG}", g.designation()},
		{"{CUR}", g.currency()},
		{"{PCT}", g.percent()},
		{"{PERIOD}", g.period()},
		{"{QTR}", g.quarter()},
		{"{YEAR2}", fmt.Sprintf("%d", year2)},
		{"{YEAR}", fmt.Sprintf("%d", year)},
		{"{PLC}", gazetteer.Places[g.rng.Intn(len(gazetteer.Places))]},
		{"{PROD}", gazetteer.Products[g.rng.Intn(len(gazetteer.Products))]},
		{"{CNT}", fmt.Sprintf("%d", 2+g.rng.Intn(30))},
		{"{POSPHRASE}", positivePhrases[g.rng.Intn(len(positivePhrases))]},
		{"{NEGPHRASE}", negativePhrases[g.rng.Intn(len(negativePhrases))]},
	}
	out := tpl
	for _, r := range replacements {
		out = strings.ReplaceAll(out, r.ph, r.val)
	}
	return out
}

func (g *Generator) currency() string {
	amount := 5 + g.rng.Intn(900)
	unit := "million"
	if g.rng.Float64() < 0.2 {
		unit = "billion"
		amount = 1 + g.rng.Intn(40)
	}
	return fmt.Sprintf("$%d %s", amount, unit)
}

func (g *Generator) percent() string {
	p := 1 + g.rng.Intn(40)
	if g.rng.Float64() < 0.5 {
		return fmt.Sprintf("%d percent", p)
	}
	return fmt.Sprintf("%d%%", p)
}

func (g *Generator) period() string {
	switch g.rng.Intn(4) {
	case 0:
		m := gazetteer.Months[g.rng.Intn(len(gazetteer.Months))]
		return fmt.Sprintf("%s %d, %d", m, 1+g.rng.Intn(28), 2000+g.rng.Intn(6))
	case 1:
		return gazetteer.Weekdays[g.rng.Intn(len(gazetteer.Weekdays))]
	case 2:
		m := gazetteer.Months[g.rng.Intn(len(gazetteer.Months))]
		return fmt.Sprintf("%s %d", m, 2000+g.rng.Intn(6))
	default:
		return gazetteer.Months[g.rng.Intn(len(gazetteer.Months))]
	}
}

func (g *Generator) quarter() string {
	if g.rng.Float64() < 0.5 {
		return gazetteer.Quarters[g.rng.Intn(len(gazetteer.Quarters))]
	}
	ord := []string{"first", "second", "third", "fourth"}[g.rng.Intn(4)]
	return "the " + ord + " quarter"
}
