package corpus

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// RenderHTML renders a generated document as the HTML page a crawler
// would actually fetch: title, navigation links, one paragraph per
// sentence, script/style decoys and a footer. The data-gathering
// component must recover the clean text from this (see
// core.BuildWebFromHTML and internal/htmlx).
func RenderHTML(doc *Document) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head>")
	fmt.Fprintf(&b, "<title>%s</title>", escape(doc.Title))
	b.WriteString("<style>body{font-family:serif;margin:2em}</style>")
	b.WriteString("<script>window.trackingId='etap-synth';</script>")
	b.WriteString("</head>\n<body>\n<nav>")
	for i, l := range doc.Links {
		fmt.Fprintf(&b, `<a href="%s">story %d</a> `, l, i+1)
	}
	b.WriteString("</nav>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(doc.Title))
	b.WriteString("<article>\n")
	for _, s := range doc.Sentences {
		fmt.Fprintf(&b, "<p>%s</p>\n", escape(s.Text))
	}
	b.WriteString("</article>\n<footer>Served by ")
	b.WriteString(escape(doc.Host))
	b.WriteString("</footer>\n</body></html>\n")
	return b.String()
}

// RenderHTMLAll renders every document concurrently across a
// GOMAXPROCS worker pool, preserving input order — the bulk path
// core.BuildWebFromHTML uses to feed the sharded index without making
// HTML rendering the serial bottleneck. Rendering is per-document pure,
// so the output is identical to calling RenderHTML in a loop.
func RenderHTMLAll(docs []Document) []string {
	out := make([]string, len(docs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		for i := range docs {
			out[i] = RenderHTML(&docs[i])
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = RenderHTML(&docs[i])
			}
		}()
	}
	for i := range docs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
