// The company inventory: the universe of company subjects the
// generator can emit, exported so sibling generators (notably
// internal/kb's synthetic knowledge base) describe exactly the
// companies that appear in generated documents — no more, no less.
package corpus

import "etap/internal/gazetteer"

// CompanyInventory returns every company subject the corpus generator
// can attribute a trigger event to, in a fixed order: gazetteer cores
// (emitted with a corporate suffix), well-known organizations, and the
// deliberately out-of-gazetteer cores. Display forms vary by suffix,
// but all variants of one entry share a canonical identity under
// rank.Canonical — which is how a knowledge base keyed on this
// inventory covers every surface form the corpus produces.
func CompanyInventory() []string {
	out := make([]string, 0, len(gazetteer.CompanyCores)+len(gazetteer.KnownOrgs)+len(gazetteer.UnknownOrgCores))
	out = append(out, gazetteer.CompanyCores...)
	out = append(out, gazetteer.KnownOrgs...)
	out = append(out, gazetteer.UnknownOrgCores...)
	return out
}
