package corpus

import "strings"

// LabeledSnippet is a ground-truth-labeled snippet, used for the pure
// positive pools and the evaluation sets of Section 5.1.
type LabeledSnippet struct {
	Text string
	// Driver is the sales driver the snippet is a trigger event for, or
	// "" for background snippets.
	Driver Driver
	// Company is the subject company for positive snippets.
	Company string
}

// PurePositives emits n "manually labeled" snippets for driver d from the
// held-out template pool: one trigger sentence plus two context sentences
// — a proper three-sentence snippet, like everything else the pipeline
// handles. Callers split the pool into a training portion and an
// evaluation portion, as the paper does ("A portion of the pure positive
// data was used in the classifier training phase, while the remaining
// portion was used ... for evaluation").
func (g *Generator) PurePositives(d Driver, n int) []LabeledSnippet {
	out := make([]LabeledSnippet, 0, n)
	for i := 0; i < n; i++ {
		company := g.company()
		parts := []string{g.trigger(d, company, true).Text}
		for k := 0; k < 2; k++ {
			if g.rng.Float64() < 0.5 {
				parts = append(parts, g.neutral().Text)
			} else {
				parts = append(parts, g.noise().Text)
			}
		}
		g.rng.Shuffle(len(parts), func(a, b int) { parts[a], parts[b] = parts[b], parts[a] })
		out = append(out, LabeledSnippet{
			Text:    strings.Join(parts, " "),
			Driver:  d,
			Company: company,
		})
	}
	return out
}

// BackgroundSnippets emits n random background snippets of three
// sentences each — the negative class ("a collection of ... randomly
// sampled snippets from the Web").
func (g *Generator) BackgroundSnippets(n int) []LabeledSnippet {
	out := make([]LabeledSnippet, 0, n)
	for i := 0; i < n; i++ {
		parts := make([]string, 0, 3)
		seen := map[string]bool{}
		for k := 0; k < 3; k++ {
			var text string
			for tries := 0; tries < 10; tries++ {
				switch {
				case g.rng.Float64() < 0.3:
					text = g.neutral().Text
				case g.rng.Float64() < 0.15:
					text = g.boilerplate().Text
				default:
					text = g.noise().Text
				}
				if !seen[text] {
					break
				}
			}
			seen[text] = true
			parts = append(parts, text)
		}
		out = append(out, LabeledSnippet{Text: strings.Join(parts, " ")})
	}
	return out
}

// MisleadingSnippets emits n near-miss snippets for driver d (biography
// paragraphs for change in management, failed-deal stories for M&A).
// They are negatives that "will deceive the classifier because of its
// features" (Section 5.2) and belong in any honest test set. Half the
// sentences come from the held-out misleading pool, which never occurs in
// the generated web, so the classifier faces novel deception the way it
// would on the real Web.
func (g *Generator) MisleadingSnippets(d Driver, n int) []LabeledSnippet {
	draw := func() string {
		if pool := misleadingHeldout[d]; len(pool) > 0 && g.rng.Float64() < 0.5 {
			return g.fill(pool[g.rng.Intn(len(pool))], "")
		}
		return g.misleading(d).Text
	}
	out := make([]LabeledSnippet, 0, n)
	for i := 0; i < n; i++ {
		parts := []string{draw()}
		for k, extra := 0, 1+g.rng.Intn(2); k < extra; k++ {
			if g.rng.Float64() < 0.5 {
				parts = append(parts, draw())
			} else {
				parts = append(parts, g.neutral().Text)
			}
		}
		out = append(out, LabeledSnippet{Text: strings.Join(parts, " ")})
	}
	return out
}

// ContainsTrigger reports whether the given snippet text (a substring
// window over the document body) contains at least one trigger sentence
// of driver d. This is the ground-truth oracle used to score the
// pipeline's extracted trigger events.
func (doc *Document) ContainsTrigger(snippetText string, d Driver) bool {
	for _, s := range doc.Sentences {
		if s.Driver == d && strings.Contains(snippetText, s.Text) {
			return true
		}
	}
	return false
}

// TriggerCompanies returns the canonical companies of the trigger
// sentences of driver d contained in the snippet text.
func (doc *Document) TriggerCompanies(snippetText string, d Driver) []string {
	var out []string
	seen := map[string]bool{}
	for _, s := range doc.Sentences {
		if s.Driver == d && s.Company != "" && strings.Contains(snippetText, s.Text) && !seen[s.Company] {
			seen[s.Company] = true
			out = append(out, s.Company)
		}
	}
	return out
}

// TriggerCount returns the number of trigger sentences for d in the
// document.
func (doc *Document) TriggerCount(d Driver) int {
	n := 0
	for _, s := range doc.Sentences {
		if s.Driver == d {
			n++
		}
	}
	return n
}
