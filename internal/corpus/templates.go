package corpus

// Sentence templates. Placeholders are expanded by the generator:
//
//	{ORG1} {ORG2}   company names (ORG2 always differs from ORG1)
//	{PRSN} {PRSN2}  person names
//	{DESIG}         designation
//	{CUR}           currency amount ("$120 million")
//	{PCT}           percentage ("12 percent" / "12%")
//	{PERIOD}        calendar expression ("January 12, 2004", "Friday", "the fourth quarter")
//	{QTR}           quarter expression ("the fourth quarter", "Q3")
//	{YEAR} {YEAR2}  years (YEAR2 > YEAR)
//	{PLC}           place
//	{PROD}          product
//	{CNT}           small count
//	{POSPHRASE}     positive semantic-orientation phrase
//	{NEGPHRASE}     negative semantic-orientation phrase
//
// trainTemplates are the phrasings reachable through smart queries; they
// populate the relevant Web pages. heldoutTemplates are disjoint phrasings
// used only for pure-positive and test snippets, mirroring the "manually
// gathered from news Web sites" data of Section 5.1.
var trainTemplates = map[Driver][]string{
	MergersAcquisitions: {
		"{ORG1} plans to acquire {ORG2} later this year.",
		"{ORG1} announced that it has acquired {ORG2} for {CUR}.",
		"{ORG1} and {ORG2} completed their merger on {PERIOD}.",
		"{ORG1} agreed to buy {ORG2} in a deal worth {CUR}.",
		"The board of {ORG1} approved the acquisition of {ORG2}.",
		"{ORG1} will take over {ORG2} pending regulatory approval.",
		"Shareholders of {ORG2} accepted the takeover offer from {ORG1}.",
		"{ORG1} is in advanced talks to merge with {ORG2}.",
		"{ORG1} acquired {ORG2} to expand its presence in {PLC}.",
		"The acquisition of {ORG2} by {ORG1} was announced on {PERIOD}.",
		"{ORG1} signed a definitive agreement to acquire {ORG2}.",
		"{ORG1} closed its {CUR} purchase of {ORG2} in {QTR}.",
	},
	ChangeInManagement: {
		"{ORG1} named {PRSN} as its new {DESIG}.",
		"{PRSN} was appointed {DESIG} of {ORG1} on {PERIOD}.",
		"{ORG1} announced the appointment of {PRSN} as {DESIG}.",
		"{PRSN} will step down as {DESIG} of {ORG1} next month.",
		"{ORG1} said {PRSN} has resigned as {DESIG}.",
		"{PRSN} joins {ORG1} as {DESIG}, replacing {PRSN2}.",
		"The board of {ORG1} promoted {PRSN} to {DESIG}.",
		"{ORG1} appointed {PRSN} as {DESIG} effective {PERIOD}.",
		"{PRSN} takes over as {DESIG} of {ORG1}, succeeding {PRSN2}.",
		"{ORG1} hired {PRSN} as its new {DESIG} to lead the expansion.",
		"{PRSN2} retired and {ORG1} elevated {PRSN} to {DESIG}.",
		"{ORG1} introduced {PRSN} as the new {DESIG} at a press conference.",
		"The new {DESIG} of {ORG1} outlined a plan to investors on {PERIOD}.",
		"{ORG1} welcomed its new {DESIG}, {PRSN}, this week.",
	},
	RevenueGrowth: {
		"{ORG1} reported a revenue growth of {PCT} in {QTR}.",
		"{ORG1} posted {POSPHRASE} with revenue up {PCT}.",
		"Revenue at {ORG1} rose {PCT} to {CUR}.",
		"{ORG1} recorded {NEGPHRASE}, with sales down {PCT}.",
		"{ORG1} beat estimates with quarterly revenue of {CUR}.",
		"{ORG1} said earnings grew {PCT} over last year.",
		"Profits at {ORG1} increased {PCT} in {QTR}.",
		"{ORG1} reported {NEGPHRASE} as revenue fell {PCT}.",
		"{ORG1} announced record revenue of {CUR} for {YEAR}.",
		"Sales at {ORG1} expanded {PCT}, driven by demand in {PLC}.",
	},
}

var heldoutTemplates = map[Driver][]string{
	MergersAcquisitions: {
		"{ORG1} said on {PERIOD} it would purchase {ORG2} for {CUR} in cash.",
		"The merger between {ORG1} and {ORG2} creates the largest firm in the sector.",
		"{ORG1} swallowed rival {ORG2} after months of negotiations.",
		"Analysts expect the {ORG1} acquisition of {ORG2} to close in {YEAR}.",
		"{ORG1} outbid competitors to buy {ORG2} for {CUR}.",
		"Regulators cleared the merger of {ORG1} and {ORG2} on {PERIOD}.",
		// Hard phrasings: no overt driver verb, so recall on held-out
		// data stays below 1 as in the paper.
		"{ORG2} is now part of {ORG1}, the companies said on {PERIOD}.",
		"The {ORG1} and {ORG2} tie-up reshapes the sector map.",
	},
	ChangeInManagement: {
		"{ORG1} has a new {DESIG} as {PRSN} takes charge on {PERIOD}.",
		"Veteran executive {PRSN} was tapped to lead {ORG1} as {DESIG}.",
		"{PRSN2} hands the {DESIG} role at {ORG1} to {PRSN}.",
		"{ORG1} installed {PRSN} as {DESIG} after a lengthy search.",
		"{PRSN} becomes {DESIG} of {ORG1}, the company said on {PERIOD}.",
		// Hard phrasings (no appointment verb).
		"{PRSN} is taking the reins at {ORG1} next week.",
		"The corner office at {ORG1} belongs to {PRSN} now.",
	},
	RevenueGrowth: {
		"Quarterly sales at {ORG1} climbed {PCT} in a {POSPHRASE}.",
		"{ORG1} turned in a {POSPHRASE} as revenue reached {CUR}.",
		"Revenue jumped {PCT} at {ORG1}, topping forecasts.",
		"{ORG1} suffered {NEGPHRASE} with revenue sliding {PCT}.",
		"Full-year revenue at {ORG1} advanced {PCT} to {CUR}.",
		// Hard phrasings.
		"The top line at {ORG1} moved {PCT} higher, filings show.",
		"{ORG1} took in {CUR} over the period, more than forecast.",
	},
}

// misleadingTemplates generate sentences that look like a driver's
// trigger events but are not ("a recurring example is the biographical
// description of a person", Section 5.2). They appear on relevant pages
// and on hard-negative pages.
var misleadingTemplates = map[Driver][]string{
	ChangeInManagement: {
		"{PRSN} was the {DESIG} of {ORG1} from {YEAR} to {YEAR2}.",
		"Before joining {ORG1}, {PRSN} served as {DESIG} at {ORG2} for {CNT} years.",
		"{PRSN} began his career at {ORG1} in {YEAR}.",
		"{PRSN} holds a degree from {PLC} and once worked as {DESIG} at {ORG2}.",
		"As {DESIG} of {ORG1} during the {YEAR} downturn, {PRSN} cut costs.",
		"{PRSN} previously spent {CNT} years as {DESIG} of {ORG2}.",
	},
	MergersAcquisitions: {
		"{ORG1} provides advisory services for mergers and acquisitions.",
		"The conference in {PLC} covered trends in mergers and acquisitions.",
		"A history of failed mergers has made investors in {ORG1} cautious.",
		"{ORG1} ruled out any acquisition this year, citing market conditions.",
		"The merger rumors about {ORG1} and {ORG2} were denied on {PERIOD}.",
		// Deceptive near-misses sharing trigger vocabulary — the M&A
		// analogue of the biography outliers.
		"{ORG1} denied reports that it plans to acquire {ORG2}.",
		"{ORG1} and {ORG2} announced a joint marketing agreement.",
		"{ORG1} acquired a minority stake in {ORG2} back in {YEAR}.",
		"{ORG1} completed its separation from {ORG2} on {PERIOD}.",
	},
	RevenueGrowth: {
		"{ORG1} declined to forecast revenue for {YEAR}.",
		"Analysts debated whether revenue growth at {ORG1} is sustainable.",
		"The {ORG1} annual report explains how revenue is recognized.",
		"{ORG1} publishes its revenue figures every {QTR}.",
	},
}

// misleadingHeldout are near-miss phrasings that never appear in the
// generated web — the classifier cannot memorize them as negatives, just
// as it could not memorize the real Web's endless variety. They are used
// only for evaluation sets, making measured precision reflect
// generalization rather than lookup.
var misleadingHeldout = map[Driver][]string{
	MergersAcquisitions: {
		"{ORG1} explored acquiring {ORG2} but talks collapsed in {YEAR}.",
		"{ORG1} once tried to merge with {ORG2}, a deal regulators blocked.",
		"A proposed merger of {ORG1} and {ORG2} fell apart on {PERIOD}.",
		"{ORG1} sold its stake in {ORG2} for {CUR} last decade.",
		"{ORG1} and {ORG2} compete fiercely in the {PLC} market.",
	},
	ChangeInManagement: {
		"{PRSN} reflected on two decades as {DESIG} of {ORG1}.",
		"An interview with {PRSN}, longtime {DESIG} of {ORG1}, ran on {PERIOD}.",
		"{PRSN} of {ORG1} spoke about life as a {DESIG} in {PLC}.",
		"The late {PRSN} led {ORG1} as {DESIG} through the {YEAR} crisis.",
		"{PRSN} remains {DESIG} of {ORG1} despite the rumors.",
	},
	RevenueGrowth: {
		"{ORG1} will report revenue for {QTR} on {PERIOD}.",
		"Forecasting revenue at {ORG1} has become harder, analysts said.",
		"The {ORG1} finance team reconciles revenue figures every {QTR}.",
	},
}

// neutralBusinessTemplates keep organizations, products and places present
// in the background class so that entity presence alone is not trivially
// discriminative.
var neutralBusinessTemplates = []string{
	"{ORG1} hosts its annual developer conference in {PLC}.",
	"{ORG1} shipped {PROD} to enterprise customers in {PLC}.",
	"Employees at {ORG1} volunteered at the food bank on {PERIOD}.",
	"The {ORG1} campus spans {CNT} acres outside {PLC}.",
	"{ORG1} sponsors the marathon held in {PLC} every {YEAR}.",
	"A spokesperson for {ORG1} declined to comment on the report.",
	"{ORG1} opened a customer support center in {PLC}.",
	"The {PROD} user group meets in {PLC} on {PERIOD}.",
	"{ORG1} celebrated its anniversary with events across {PLC}.",
	"Engineers at {ORG1} presented a paper about {PROD}.",
}

// noiseTemplates are generic non-business sentences. The inventory is
// deliberately wide and heavily parameterized: on the real Web the noise
// vocabulary is effectively unbounded, so no single noise sentence should
// recur often enough to accumulate class weight.
var noiseTemplates = []string{
	"The weather in {PLC} remained pleasant throughout the week.",
	"The local team won the championship game on {PERIOD}.",
	"A new restaurant opened downtown near the central station of {PLC}.",
	"Traffic on the highway near {PLC} was heavy during the morning commute.",
	"Scientists discovered a new species of frog in the rainforest.",
	"The museum unveiled an exhibition of modern art in {PLC}.",
	"Volunteers planted {CNT} trees along the river bank on {PERIOD}.",
	"The festival drew thousands of visitors to {PLC} in {YEAR}.",
	"Residents of {PLC} gathered for the annual street fair near the park.",
	"The library in {PLC} extended its opening hours for the summer.",
	"A documentary about ocean life premiered at the {PLC} film festival.",
	"The city council of {PLC} discussed plans for a new bicycle lane.",
	"Farmers near {PLC} reported a good harvest after the early rains.",
	"The orchestra performed a program of classical favorites on {PERIOD}.",
	"Hikers enjoyed clear views from the summit trail on {PERIOD}.",
	"The school in {PLC} organized a science fair for {CNT} students.",
	"A vintage car rally passed through {PLC} over the weekend.",
	"The bakery on the corner introduced a seasonal menu on {PERIOD}.",
	"Local artists painted a mural near the harbor of {PLC}.",
	"The zoo in {PLC} welcomed a newborn elephant calf this spring.",
	"Rainfall in {PLC} measured {CNT} millimeters during {PERIOD}.",
	"A marathon through {PLC} attracted {CNT} runners in {YEAR}.",
	"The theater company staged a comedy in {PLC} on {PERIOD}.",
	"Birdwatchers counted {CNT} species at the wetland near {PLC}.",
	"The university in {PLC} hosted a lecture series during {PERIOD}.",
	"Gardeners in {PLC} prepared flower beds ahead of the spring.",
	"A cooking class in {PLC} filled all {CNT} seats within hours.",
	"The ferry between the islands resumed service on {PERIOD}.",
	"Cyclists toured the coastal road near {PLC} over {PERIOD}.",
	"The chess club of {PLC} held its open tournament in {YEAR}.",
	"Astronomy fans in {PLC} watched the meteor shower on {PERIOD}.",
	"The aquarium added a reef tank with {CNT} species of fish.",
	"A quilt exhibition opened at the community hall in {PLC}.",
	"Students from {PLC} won the regional debate held on {PERIOD}.",
	"The botanical garden in {PLC} catalogued {CNT} orchid varieties.",
	"A food truck festival took over the square in {PLC} on {PERIOD}.",
	"The swimming pool in {PLC} reopened after renovation in {YEAR}.",
	"Beekeepers near {PLC} harvested a record amount of honey.",
	"The choir from {PLC} toured three towns during {PERIOD}.",
	"A pottery workshop in {PLC} drew {CNT} participants on {PERIOD}.",
}

// boilerplateTemplates model page chrome — the text around articles that
// the snippet filters must learn to reject (Figure 6's "noise in the
// result" sentences).
var boilerplateTemplates = []string{
	"Click here to subscribe to our newsletter.",
	"Sign up for daily email alerts and breaking news.",
	"Copyright {YEAR} by the publisher and all rights reserved.",
	"Related articles and archived stories appear below.",
	"Use of this site constitutes acceptance of our terms.",
	"Advertise with us to reach business readers worldwide.",
	"Read the full story after a free registration.",
	"Comments are moderated and may take time to appear.",
	"Share this article by email or print it for later.",
	"Our markets page updates every trading day at 9 am.",
}

// positivePhrases and negativePhrases are the semantic-orientation
// vocabulary embedded in revenue-growth sentences; the ranking component's
// lexicon (internal/rank) mirrors them.
var positivePhrases = []string{
	"significant growth", "solid quarter", "strong performance",
	"record results", "robust expansion", "impressive gains",
	"stellar quarter", "healthy margins",
}

var negativePhrases = []string{
	"severe losses", "sharp decline", "worst losses",
	"steep drop", "disappointing results", "weak demand",
	"heavy shortfall", "painful contraction",
}

// PositivePhrases returns a copy of the positive orientation phrases used
// by the generator (exported for the ranking lexicon and tests).
func PositivePhrases() []string { return append([]string(nil), positivePhrases...) }

// NegativePhrases returns a copy of the negative orientation phrases.
func NegativePhrases() []string { return append([]string(nil), negativePhrases...) }
