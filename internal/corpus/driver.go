// Package corpus generates the deterministic synthetic Web that stands in
// for the live 2005 Web the paper crawled. It produces business-news
// documents whose sentences carry ground-truth labels: trigger-event
// sentences for each sales driver, misleading near-miss sentences (the
// biography outliers the paper discusses for change in management),
// business-neutral filler and generic noise, plus page boilerplate.
//
// The generator is seeded and fully reproducible. Template inventories are
// split into a training pool (reachable via smart queries, Section 3.3.1)
// and a held-out pool used to emit the "manually labeled" pure-positive
// and test data, so that classifiers must generalize across phrasings.
package corpus

// Driver identifies a sales driver. ETAP "currently considers three sales
// drivers, viz., mergers & acquisitions, change in management, and
// revenue growth."
type Driver string

// The three sales drivers of the paper.
const (
	MergersAcquisitions Driver = "mergers-acquisitions"
	ChangeInManagement  Driver = "change-in-management"
	RevenueGrowth       Driver = "revenue-growth"
)

// Drivers lists the built-in sales drivers.
var Drivers = []Driver{MergersAcquisitions, ChangeInManagement, RevenueGrowth}

// Title returns the human-readable driver name used in the paper.
func (d Driver) Title() string {
	switch d {
	case MergersAcquisitions:
		return "Mergers & acquisitions"
	case ChangeInManagement:
		return "Change in management"
	case RevenueGrowth:
		return "Revenue growth"
	default:
		return string(d)
	}
}
