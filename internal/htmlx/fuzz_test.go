package htmlx

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzExtractText asserts the extractor is total: no panics, output
// contains no markup, and valid UTF-8 stays valid.
func FuzzExtractText(f *testing.F) {
	seeds := []string{
		"",
		"<p>plain</p>",
		"<html><head><title>t</title></head><body><p>x</p></body></html>",
		"<script>alert('<p>')</script>visible",
		"<a href='u'>link</a> &amp; &#65; &#xzz; &unknown;",
		"<p>unclosed <b>bold",
		"<<<>>>",
		"<P CLASS=\"x\">upper</P>",
		"text < not a tag > more",
		"<style>p{}</style><p>after</p>",
		strings.Repeat("<div>", 100) + "deep" + strings.Repeat("</div>", 100),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, html string) {
		text := ExtractText(html)
		if utf8.ValidString(html) && !utf8.ValidString(text) {
			t.Fatalf("invalid UTF-8 output from valid input: %q", text)
		}
		_ = Title(html)
		_ = ExtractLinks(html)
	})
}
