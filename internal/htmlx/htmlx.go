// Package htmlx is a minimal HTML processor for the data-gathering
// component: real Web pages arrive as markup, and the paper's
// eShopMonitor-style gatherer must turn them into clean text before
// snippet generation. It extracts visible text (dropping script/style
// and decoding entities), hyperlinks, and the page title, without any
// external dependency.
//
// The parser is deliberately forgiving — crawled HTML is rarely
// well-formed — and block-level elements become sentence-safe breaks so
// that the sentence chunker never glues a heading onto body text.
package htmlx

import (
	"strings"
	"unicode"
)

// blockTags are elements whose boundaries must not merge adjacent text.
var blockTags = map[string]bool{
	"p": true, "div": true, "br": true, "li": true, "ul": true,
	"ol": true, "h1": true, "h2": true, "h3": true, "h4": true,
	"h5": true, "h6": true, "tr": true, "td": true, "th": true,
	"table": true, "section": true, "article": true, "header": true,
	"footer": true, "nav": true, "blockquote": true, "hr": true,
	"title": true,
}

// skipTags are elements whose content is never visible text. The whole
// <head> is skipped: its title belongs to Title(), not the body text.
var skipTags = map[string]bool{
	"script": true, "style": true, "noscript": true, "head": true,
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": `"`, "apos": "'",
	"nbsp": " ", "mdash": "—", "ndash": "–", "hellip": "…",
	"rsquo": "'", "lsquo": "'", "rdquo": "”", "ldquo": "“",
	"copy": "©", "reg": "®", "trade": "™", "euro": "€", "pound": "£",
}

// ExtractText returns the visible text of an HTML document. Block
// boundaries become double newlines (paragraph breaks for the sentence
// chunker); inline whitespace is collapsed.
func ExtractText(html string) string {
	var b strings.Builder
	skipDepth := 0
	i := 0
	n := len(html)
	for i < n {
		if html[i] == '<' {
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				break // unterminated tag: drop the tail
			}
			tag := html[i+1 : i+end]
			i += end + 1
			name, closing := tagName(tag)
			if name == "" {
				continue // comment or doctype
			}
			if skipTags[name] {
				if closing {
					if skipDepth > 0 {
						skipDepth--
					}
				} else if !strings.HasSuffix(tag, "/") {
					skipDepth++
				}
				continue
			}
			if blockTags[name] {
				b.WriteString("\n\n")
			}
			continue
		}
		next := strings.IndexByte(html[i:], '<')
		var chunk string
		if next < 0 {
			chunk = html[i:]
			i = n
		} else {
			chunk = html[i : i+next]
			i += next
		}
		if skipDepth == 0 {
			b.WriteString(decodeEntities(chunk))
		}
	}
	return collapse(b.String())
}

// Title returns the contents of the first <title> element.
func Title(html string) string {
	lower := strings.ToLower(html)
	start := strings.Index(lower, "<title")
	if start < 0 {
		return ""
	}
	open := strings.IndexByte(html[start:], '>')
	if open < 0 {
		return ""
	}
	rest := html[start+open+1:]
	end := strings.Index(strings.ToLower(rest), "</title>")
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(collapse(decodeEntities(rest[:end])))
}

// ExtractLinks returns the href targets of anchor tags, in document
// order, skipping fragments and javascript links.
func ExtractLinks(html string) []string {
	var out []string
	lower := strings.ToLower(html)
	i := 0
	for {
		a := strings.Index(lower[i:], "<a")
		if a < 0 {
			break
		}
		i += a
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tag := html[i : i+end]
		i += end + 1
		href := attr(tag, "href")
		if href == "" || strings.HasPrefix(href, "#") ||
			strings.HasPrefix(strings.ToLower(href), "javascript:") {
			continue
		}
		out = append(out, href)
	}
	return out
}

// attr extracts an attribute value from a raw tag string (quoted with
// single or double quotes, or bare). The attribute name must start at a
// word boundary so "href" does not match inside "nohref".
func attr(tag, name string) string {
	lower := strings.ToLower(tag)
	idx := -1
	for from := 0; ; {
		i := strings.Index(lower[from:], name+"=")
		if i < 0 {
			return ""
		}
		i += from
		if i == 0 || lower[i-1] == ' ' || lower[i-1] == '\t' || lower[i-1] == '\n' {
			idx = i
			break
		}
		from = i + 1
	}
	rest := tag[idx+len(name)+1:]
	if rest == "" {
		return ""
	}
	switch rest[0] {
	case '"', '\'':
		q := rest[0]
		if end := strings.IndexByte(rest[1:], q); end >= 0 {
			return rest[1 : 1+end]
		}
		return ""
	default:
		end := strings.IndexFunc(rest, unicode.IsSpace)
		if end < 0 {
			end = len(rest)
		}
		return strings.TrimSuffix(rest[:end], "/")
	}
}

// tagName parses a raw tag body into its lower-case element name and
// whether it is a closing tag. Comments/doctypes yield "".
func tagName(tag string) (name string, closing bool) {
	tag = strings.TrimSpace(tag)
	if tag == "" || tag[0] == '!' || tag[0] == '?' {
		return "", false
	}
	if tag[0] == '/' {
		closing = true
		tag = tag[1:]
	}
	end := 0
	for end < len(tag) {
		c := tag[end]
		if c == ' ' || c == '\t' || c == '\n' || c == '/' || c == '>' {
			break
		}
		end++
	}
	return strings.ToLower(tag[:end]), closing
}

// decodeEntities resolves the common named entities and numeric
// references.
func decodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	i := 0
	for i < len(s) {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		semi := strings.IndexByte(s[i:], ';')
		if semi < 0 || semi > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		ent := s[i+1 : i+semi]
		if v, ok := entities[ent]; ok {
			b.WriteString(v)
			i += semi + 1
			continue
		}
		if strings.HasPrefix(ent, "#") {
			if r := parseNumericEntity(ent[1:]); r > 0 {
				b.WriteRune(r)
				i += semi + 1
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func parseNumericEntity(s string) rune {
	base := 10
	if len(s) > 1 && (s[0] == 'x' || s[0] == 'X') {
		base = 16
		s = s[1:]
	}
	var v rune
	for _, c := range s {
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = c - '0'
		case base == 16 && c >= 'a' && c <= 'f':
			d = c - 'a' + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = c - 'A' + 10
		default:
			return 0
		}
		v = v*rune(base) + d
		if v > 0x10FFFF {
			return 0
		}
	}
	return v
}

// collapse normalizes whitespace: runs of blank lines become one
// paragraph break, other whitespace runs a single space.
func collapse(s string) string {
	var b strings.Builder
	lines := strings.Split(s, "\n")
	blank := 0
	wrote := false
	for _, line := range lines {
		line = strings.Join(strings.Fields(line), " ")
		if line == "" {
			blank++
			continue
		}
		if wrote {
			if blank > 0 {
				b.WriteString("\n\n")
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(line)
		wrote = true
		blank = 0
	}
	return b.String()
}
