package htmlx

import (
	"strings"
	"testing"
)

const page = `<!DOCTYPE html>
<html><head><title>Acme acquires Widget &amp; Co</title>
<style>body { color: red; }</style>
<script>var x = "<p>not text</p>";</script>
</head>
<body>
<div class="nav"><a href="/home">Home</a> <a href="#top">Top</a></div>
<h1>Acme acquires Widget</h1>
<p>Acme Corp announced that it has acquired Widget Inc for $120 million.</p>
<p>The deal closed on <b>Friday</b> &mdash; shares rose 10%.</p>
<ul><li>Item one</li><li>Item two</li></ul>
<a href='http://other.example.com/story'>Related story</a>
<a href="javascript:void(0)">Ignore</a>
<!-- a comment with <fake> tags -->
</body></html>`

func TestExtractTextBasics(t *testing.T) {
	text := ExtractText(page)
	for _, want := range []string{
		"Acme Corp announced that it has acquired Widget Inc for $120 million.",
		"The deal closed on Friday — shares rose 10%.",
		"Item one",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in %q", want, text)
		}
	}
}

func TestExtractTextDropsScriptAndStyle(t *testing.T) {
	text := ExtractText(page)
	for _, banned := range []string{"color: red", "var x", "not text"} {
		if strings.Contains(text, banned) {
			t.Errorf("script/style leaked: %q", banned)
		}
	}
}

func TestExtractTextBlocksSeparate(t *testing.T) {
	text := ExtractText("<h1>Headline no period</h1><p>Body text here.</p>")
	if !strings.Contains(text, "\n\n") {
		t.Fatalf("no paragraph break between blocks: %q", text)
	}
	if strings.Contains(text, "periodBody") || strings.Contains(text, "period Body") &&
		!strings.Contains(text, "\n") {
		t.Fatalf("blocks merged: %q", text)
	}
}

func TestExtractTextInlineTagsMerge(t *testing.T) {
	text := ExtractText("<p>shares <b>rose</b> <i>sharply</i> today</p>")
	if !strings.Contains(text, "shares rose sharply today") {
		t.Fatalf("inline merge failed: %q", text)
	}
}

func TestExtractTextEntities(t *testing.T) {
	text := ExtractText("<p>AT&amp;T &lt;hello&gt; &#65;&#x42; &euro;5</p>")
	if !strings.Contains(text, "AT&T <hello> AB €5") {
		t.Fatalf("entities: %q", text)
	}
}

func TestExtractTextUnknownEntityKept(t *testing.T) {
	text := ExtractText("<p>a &bogus; b</p>")
	if !strings.Contains(text, "&bogus;") {
		t.Fatalf("unknown entity mangled: %q", text)
	}
}

func TestExtractTextMalformed(t *testing.T) {
	// Unterminated tag, stray brackets: must not panic, best-effort text.
	for _, in := range []string{"<p>text <unclosed", "a < b > c", "", "<><>"} {
		_ = ExtractText(in)
	}
	if got := ExtractText("a &lt b"); !strings.Contains(got, "a") {
		t.Errorf("got %q", got)
	}
}

func TestTitle(t *testing.T) {
	if got := Title(page); got != "Acme acquires Widget & Co" {
		t.Fatalf("title = %q", got)
	}
	if got := Title("<p>no title</p>"); got != "" {
		t.Fatalf("phantom title %q", got)
	}
}

func TestExtractLinks(t *testing.T) {
	links := ExtractLinks(page)
	want := []string{"/home", "http://other.example.com/story"}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want %v", links, want)
	}
	for i := range want {
		if links[i] != want[i] {
			t.Errorf("link %d = %q, want %q", i, links[i], want[i])
		}
	}
}

func TestAttrQuoting(t *testing.T) {
	cases := map[string]string{
		`a href="x y"`: "x y",
		`a href='z'`:   "z",
		`a href=bare`:  "bare",
		`a nohref="x"`: "",
		`a href=""`:    "",
	}
	for tag, want := range cases {
		if got := attr(tag, "href"); got != want {
			t.Errorf("attr(%q) = %q, want %q", tag, got, want)
		}
	}
}
