package ner

import (
	"hash/fnv"
	"strconv"
	"strings"
	"unicode"

	"etap/internal/textproc"
)

// Recognizer annotates token streams with the 13 ETAP entity categories.
// A zero-value Recognizer is not usable; construct with NewRecognizer.
type Recognizer struct {
	gaz *gazetteers

	// missRate, when > 0, deterministically drops that fraction of
	// recognized entities (keyed by a hash of the surface text and seed).
	// It models the recognition errors the paper's conclusion warns
	// about ("wrong annotation of company and person names leads to
	// incorrect trigger events") and is used by robustness tests and
	// ablation benches.
	missRate float64
	seed     uint64
}

// Option configures a Recognizer.
type Option func(*Recognizer)

// WithMissRate makes the recognizer deterministically miss the given
// fraction of entities (0 <= rate < 1). The choice of which entities are
// missed is a pure function of the surface text and seed, so corpora are
// annotated reproducibly.
func WithMissRate(rate float64, seed int64) Option {
	return func(r *Recognizer) {
		r.missRate = rate
		r.seed = uint64(seed)
	}
}

// NewRecognizer builds a recognizer over the built-in gazetteers.
func NewRecognizer(opts ...Option) *Recognizer {
	r := &Recognizer{gaz: defaultGazetteers()}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Recognize scans tokens left to right and returns the non-overlapping
// entities found, in token order. At each position the highest-priority,
// longest match wins; numeric patterns outrank gazetteer lookups so that
// "$5 million" is CURRENCY rather than a CNT followed by words.
func (r *Recognizer) Recognize(tokens []textproc.Token) []Entity {
	lowered := make([]string, len(tokens))
	for i, t := range tokens {
		lowered[i] = strings.ToLower(t.Text)
	}

	var out []Entity
	i := 0
	for i < len(tokens) {
		cat, span := r.matchAt(tokens, lowered, i)
		if span == 0 {
			i++
			continue
		}
		e := Entity{
			Category:   cat,
			Text:       joinTokens(tokens, i, i+span),
			TokenStart: i,
			TokenEnd:   i + span,
			Start:      tokens[i].Start,
			End:        tokens[i+span-1].End,
		}
		if !r.dropped(e) {
			out = append(out, e)
		}
		i += span
	}
	return out
}

// RecognizeText tokenizes and recognizes in one call.
func (r *Recognizer) RecognizeText(text string) []Entity {
	return r.Recognize(textproc.Tokenize(text))
}

// dropped implements deterministic error injection.
func (r *Recognizer) dropped(e Entity) bool {
	if r.missRate <= 0 {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(e.Text))
	h.Write([]byte(e.Category))
	var b [8]byte
	s := r.seed
	for i := 0; i < 8; i++ {
		b[i] = byte(s >> (8 * i))
	}
	h.Write(b[:])
	return float64(h.Sum64()%10000) < r.missRate*10000
}

// matchAt tries every matcher at position i, highest priority first.
func (r *Recognizer) matchAt(tokens []textproc.Token, lowered []string, i int) (Category, int) {
	if span := r.matchCurrency(tokens, lowered, i); span > 0 {
		return CURRENCY, span
	}
	if span := r.matchPercent(tokens, lowered, i); span > 0 {
		return PRCNT, span
	}
	if span := r.matchLength(tokens, lowered, i); span > 0 {
		return LNGTH, span
	}
	if span := r.matchTime(tokens, lowered, i); span > 0 {
		return TIM, span
	}
	if span := r.matchPeriod(tokens, lowered, i); span > 0 {
		return PERIOD, span
	}
	if span := r.matchYear(tokens, i); span > 0 {
		return YEAR, span
	}
	if span := r.matchCount(tokens, i); span > 0 {
		return CNT, span
	}
	if span := r.gaz.designations.match(lowered, i); span > 0 {
		return DESIG, span
	}
	if span := r.matchOrg(tokens, lowered, i); span > 0 {
		return ORG, span
	}
	if span := r.gaz.products.match(lowered, i); span > 0 && isCap(tokens[i].Text) {
		return PROD, span
	}
	if span := r.gaz.objects.match(lowered, i); span > 0 && isCap(tokens[i].Text) {
		return OBJ, span
	}
	if span := r.matchPerson(tokens, lowered, i); span > 0 {
		return PRSN, span
	}
	if span := r.gaz.places.match(lowered, i); span > 0 && isCap(tokens[i].Text) {
		return PLC, span
	}
	return "", 0
}

// --- numeric patterns -------------------------------------------------

var magnitudes = map[string]bool{
	"million": true, "billion": true, "trillion": true,
	"thousand": true, "crore": true, "lakh": true, "m": false, "bn": false,
}

var currencyWords = map[string]bool{
	"dollars": true, "dollar": true, "euros": true, "euro": true,
	"pounds": true, "rupees": true, "yen": true, "usd": true,
	"cents": true,
}

var currencySymbols = map[string]bool{"$": true, "€": true, "£": true, "¥": true}

// matchCurrency matches "$5", "$5.2 million", "5 million dollars",
// "160 million USD".
func (r *Recognizer) matchCurrency(tokens []textproc.Token, lowered []string, i int) int {
	n := len(tokens)
	// Symbol-led: $ NUMBER [magnitude]
	if currencySymbols[tokens[i].Text] {
		if i+1 < n && tokens[i+1].IsNumber() {
			span := 2
			if i+2 < n && magnitudes[lowered[i+2]] {
				span = 3
			}
			return span
		}
		return 0
	}
	// Number-led: NUMBER [magnitude] currencyWord
	if tokens[i].IsNumber() {
		j := i + 1
		if j < n && magnitudes[lowered[j]] {
			j++
		}
		if j < n && currencyWords[lowered[j]] {
			return j - i + 1
		}
	}
	return 0
}

// matchPercent matches "10%", "10 percent", "3.5 percentage points".
func (r *Recognizer) matchPercent(tokens []textproc.Token, lowered []string, i int) int {
	if !tokens[i].IsNumber() {
		return 0
	}
	n := len(tokens)
	if i+1 < n {
		switch {
		case tokens[i+1].Text == "%":
			return 2
		case lowered[i+1] == "percent" || lowered[i+1] == "pct":
			return 2
		case lowered[i+1] == "percentage" && i+2 < n &&
			(lowered[i+2] == "points" || lowered[i+2] == "point"):
			return 3
		}
	}
	return 0
}

// matchLength matches "500 square feet", "2 terabytes".
func (r *Recognizer) matchLength(tokens []textproc.Token, lowered []string, i int) int {
	if !tokens[i].IsNumber() {
		return 0
	}
	if i+1 >= len(tokens) {
		return 0
	}
	if span := r.gaz.lengthUnits.match(lowered, i+1); span > 0 {
		return 1 + span
	}
	return 0
}

// matchTime matches "3:30", "3:30 pm", "9 am", "9 a.m".
func (r *Recognizer) matchTime(tokens []textproc.Token, lowered []string, i int) int {
	n := len(tokens)
	if !tokens[i].IsNumber() {
		return 0
	}
	// NUMBER : NUMBER [am|pm]
	if i+2 < n && tokens[i+1].Text == ":" && tokens[i+2].IsNumber() {
		span := 3
		if i+3 < n && isMeridiem(lowered[i+3]) {
			span++
		}
		return span
	}
	// NUMBER am|pm
	if i+1 < n && isMeridiem(lowered[i+1]) {
		return 2
	}
	return 0
}

func isMeridiem(w string) bool {
	switch w {
	case "am", "pm", "a.m", "p.m", "a.m.", "p.m.":
		return true
	}
	return false
}

// matchPeriod matches calendar expressions: "January 12, 2004",
// "January 2004", "January", "Monday", "Q4", "fourth quarter",
// "first half", "last year", "next quarter", "previous quarter".
func (r *Recognizer) matchPeriod(tokens []textproc.Token, lowered []string, i int) int {
	n := len(tokens)
	w := lowered[i]

	if r.gaz.months[w] && isCap(tokens[i].Text) {
		span := 1
		j := i + 1
		// optional day number
		if j < n && tokens[j].IsNumber() && len(tokens[j].Text) <= 2 {
			span++
			j++
			// optional comma + year
			if j+1 < n && tokens[j].Text == "," && isYearNumber(tokens[j+1]) {
				span += 2
				j += 2
			}
		}
		// optional year directly
		if j < n && isYearNumber(tokens[j]) {
			span++
		}
		return span
	}
	if r.gaz.weekdays[w] && isCap(tokens[i].Text) {
		return 1
	}
	// Q1..Q4, optionally followed by a year ("Q4 2004").
	if len(w) == 2 && w[0] == 'q' && w[1] >= '1' && w[1] <= '4' {
		if i+1 < n && isYearNumber(tokens[i+1]) {
			return 2
		}
		return 1
	}
	// ordinal quarter/half: "fourth quarter", "first half"
	if isOrdinal(w) && i+1 < n && (lowered[i+1] == "quarter" || lowered[i+1] == "half") {
		return 2
	}
	// relative periods: "last year", "this quarter", "next month",
	// "previous quarter" — PERIOD expressions the ranking component's
	// time resolver consumes.
	if (w == "last" || w == "next" || w == "previous" || w == "this") && i+1 < n {
		switch lowered[i+1] {
		case "year", "quarter", "month", "week":
			return 2
		}
	}
	return 0
}

func isOrdinal(w string) bool {
	switch w {
	case "first", "second", "third", "fourth":
		return true
	}
	return false
}

func isYearNumber(t textproc.Token) bool {
	if !t.IsNumber() || len(t.Text) != 4 {
		return false
	}
	y, err := strconv.Atoi(t.Text)
	return err == nil && y >= 1900 && y <= 2099
}

// matchYear matches a sole 4-digit year.
func (r *Recognizer) matchYear(tokens []textproc.Token, i int) int {
	if isYearNumber(tokens[i]) {
		return 1
	}
	return 0
}

// matchCount matches any remaining bare number as a count figure.
func (r *Recognizer) matchCount(tokens []textproc.Token, i int) int {
	if tokens[i].IsNumber() {
		return 1
	}
	return 0
}

// --- name patterns ----------------------------------------------------

// matchOrg matches organizations:
//  1. known full org names ("IBM", "Daksh");
//  2. one or two capitalized tokens followed by a corporate suffix
//     ("Brellvane Inc", "Silverlake Capital Group" — suffix run absorbed);
//  3. a bare gazetteer company core ("Halcyon").
func (r *Recognizer) matchOrg(tokens []textproc.Token, lowered []string, i int) int {
	n := len(tokens)
	if r.gaz.knownOrgs[lowered[i]] && isCap(tokens[i].Text) {
		return 1
	}
	if !isCap(tokens[i].Text) || !tokens[i].IsWord() {
		return 0
	}
	// Sentence-initial function words are capitalized but never part of
	// an organization name.
	switch lowered[i] {
	case "the", "a", "an", "this", "that", "these", "those", "its",
		"his", "her", "their", "our", "your", "my":
		return 0
	}
	// Capitalized run followed by suffix token(s).
	j := i
	for j < n && tokens[j].IsWord() && isCap(tokens[j].Text) && j-i < 3 {
		if r.gaz.orgSuffixes[lowered[j]] && j > i {
			// absorb a second suffix ("Holdings Ltd")
			k := j + 1
			if k < n && tokens[k].IsWord() && r.gaz.orgSuffixes[lowered[k]] {
				k++
			}
			return k - i
		}
		j++
	}
	if j < n && tokens[j].IsWord() && r.gaz.orgSuffixes[lowered[j]] && j > i && j-i <= 3 {
		return j - i + 1
	}
	// Bare known core.
	if r.gaz.companyCores[lowered[i]] {
		return 1
	}
	return 0
}

// matchPerson matches person names:
//  1. honorific + capitalized name(s): "Mr. Andersen", "Dr. Jane Smith";
//  2. FirstName [Initial.] LastName;
//  3. FirstName + unknown capitalized token (recognizer generalization);
//  4. bare FirstName LastName pairs from the gazetteer.
func (r *Recognizer) matchPerson(tokens []textproc.Token, lowered []string, i int) int {
	n := len(tokens)
	if isHonorific(lowered[i]) && isCap(tokens[i].Text) {
		j := i + 1
		// optional period after the honorific
		if j < n && tokens[j].Text == "." {
			j++
		}
		start := j
		for j < n && j-start < 3 && tokens[j].IsWord() && isCap(tokens[j].Text) {
			j++
			// skip initial periods: "Mr. J. Smith"
			if j < n && tokens[j].Text == "." && j-1 >= start && len(tokens[j-1].Text) == 1 {
				j++
			}
		}
		if j > start {
			return j - i
		}
		return 0
	}

	if !r.gaz.firstNames[lowered[i]] || !isCap(tokens[i].Text) {
		return 0
	}
	j := i + 1
	// optional middle initial: "James R. Smith"
	if j+1 < n && tokens[j].IsWord() && len(tokens[j].Text) == 1 &&
		isCap(tokens[j].Text) && tokens[j+1].Text == "." {
		j += 2
	}
	if j < n && tokens[j].IsWord() && isCap(tokens[j].Text) {
		lw := lowered[j]
		// Known surname, or any unknown capitalized token that is not
		// itself an org/place/etc. (generalization with realistic
		// over-triggering).
		if r.gaz.lastNames[lw] ||
			(!r.gaz.knownOrgs[lw] && !r.gaz.companyCores[lw] &&
				!r.gaz.orgSuffixes[lw] && !r.gaz.months[lw]) {
			return j - i + 1
		}
	}
	return 0
}

func isHonorific(w string) bool {
	switch w {
	case "mr", "mrs", "ms", "dr", "prof":
		return true
	}
	return false
}

func isCap(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}
