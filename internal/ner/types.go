// Package ner implements the named-entity recognizer ETAP relies on for
// feature abstraction (Section 3.2.1). It identifies and annotates
// entities in the same 13 categories as the recognizer of [11]:
//
//	ORG       organization name
//	DESIG     designation (job title)
//	OBJ       object name (named deals, programs, funds)
//	TIM       time of day
//	PERIOD    months, days, dates, quarters
//	CURRENCY  currency measure
//	YEAR      sole mention of a year
//	PRCNT     percentage figure
//	PROD      product name
//	PLC       place name
//	PRSN      person name
//	LNGTH     units of measurement other than currency
//	CNT       count figures
//
// The recognizer is deterministic: gazetteer lookups (longest match wins)
// plus pattern rules for the numeric categories.
package ner

import "etap/internal/textproc"

// Category is a named-entity category. Category names are upper-case,
// matching the paper's convention that distinguishes entity categories
// from (lower-case) part-of-speech categories.
type Category string

// The 13 entity categories of the ETAP recognizer.
const (
	ORG      Category = "ORG"
	DESIG    Category = "DESIG"
	OBJ      Category = "OBJ"
	TIM      Category = "TIM"
	PERIOD   Category = "PERIOD"
	CURRENCY Category = "CURRENCY"
	YEAR     Category = "YEAR"
	PRCNT    Category = "PRCNT"
	PROD     Category = "PROD"
	PLC      Category = "PLC"
	PRSN     Category = "PRSN"
	LNGTH    Category = "LNGTH"
	CNT      Category = "CNT"
)

// Categories lists all 13 categories in the paper's order.
var Categories = []Category{
	ORG, DESIG, OBJ, TIM, PERIOD, CURRENCY, YEAR, PRCNT, PROD, PLC,
	PRSN, LNGTH, CNT,
}

// Entity is a recognized named entity spanning one or more tokens.
type Entity struct {
	Category   Category
	Text       string // surface text joined from the matched tokens
	TokenStart int    // index of the first matched token
	TokenEnd   int    // index one past the last matched token
	Start      int    // byte offset in the source text
	End        int    // byte offset one past the last byte
}

// Span returns the number of tokens the entity covers.
func (e Entity) Span() int { return e.TokenEnd - e.TokenStart }

// joinTokens renders the surface text of tokens[start:end] with single
// spaces, which is how multi-token gazetteer phrases are stored.
func joinTokens(tokens []textproc.Token, start, end int) string {
	if end-start == 1 {
		return tokens[start].Text
	}
	n := 0
	for i := start; i < end; i++ {
		n += len(tokens[i].Text) + 1
	}
	b := make([]byte, 0, n)
	for i := start; i < end; i++ {
		if i > start {
			b = append(b, ' ')
		}
		b = append(b, tokens[i].Text...)
	}
	return string(b)
}
