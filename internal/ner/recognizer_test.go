package ner

import (
	"testing"
	"testing/quick"

	"etap/internal/textproc"
)

func find(ents []Entity, cat Category) []string {
	var out []string
	for _, e := range ents {
		if e.Category == cat {
			out = append(out, e.Text)
		}
	}
	return out
}

func one(t *testing.T, ents []Entity, cat Category, want string) {
	t.Helper()
	got := find(ents, cat)
	if len(got) != 1 || got[0] != want {
		t.Errorf("%s: got %v, want [%s] (all: %+v)", cat, got, want, ents)
	}
}

func TestRecognizeKnownOrg(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("IBM acquired Daksh in a landmark deal.")
	got := find(ents, ORG)
	if len(got) != 2 || got[0] != "IBM" || got[1] != "Daksh" {
		t.Fatalf("orgs = %v, want [IBM Daksh]", got)
	}
}

func TestRecognizeOrgWithSuffix(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Shares of Brellvane Inc rose sharply.")
	one(t, ents, ORG, "Brellvane Inc")
}

func TestRecognizeMultiwordOrgWithSuffix(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The buyer was Silverlake Capital Group according to filings.")
	got := find(ents, ORG)
	if len(got) != 1 || got[0] != "Silverlake Capital Group" {
		t.Fatalf("orgs = %v", got)
	}
}

func TestRecognizeBareCompanyCore(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Analysts expect Halcyon to report earnings.")
	one(t, ents, ORG, "Halcyon")
}

func TestRecognizePersonHonorific(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Mr. Andersen was the CEO of the firm.")
	got := find(ents, PRSN)
	if len(got) != 1 || got[0] != "Mr . Andersen" && got[0] != "Mr. Andersen" {
		t.Fatalf("persons = %v", got)
	}
	one(t, ents, DESIG, "CEO")
}

func TestRecognizePersonFirstLast(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The board appointed James Smith yesterday.")
	one(t, ents, PRSN, "James Smith")
}

func TestRecognizePersonUnknownSurname(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The board named Mary Threlkeld president of the division.")
	one(t, ents, PRSN, "Mary Threlkeld")
}

func TestRecognizeDesignationMultiword(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("She became Chief Executive Officer last month.")
	one(t, ents, DESIG, "Chief Executive Officer")
	one(t, ents, PERIOD, "last month")
}

func TestRecognizeCurrencySymbol(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The deal was worth $160 million at closing.")
	one(t, ents, CURRENCY, "$ 160 million")
}

func TestRecognizeCurrencyWords(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("They paid 5 billion dollars for the unit.")
	one(t, ents, CURRENCY, "5 billion dollars")
}

func TestRecognizePercent(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Revenue grew 10% while margins rose 3.5 percent.")
	got := find(ents, PRCNT)
	if len(got) != 2 || got[0] != "10 %" || got[1] != "3.5 percent" {
		t.Fatalf("percents = %v", got)
	}
}

func TestRecognizeYearVsCount(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("In 2004 the firm hired 500 engineers.")
	one(t, ents, YEAR, "2004")
	one(t, ents, CNT, "500")
}

func TestRecognizePeriodDate(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The merger closed on January 12, 2004 in New York.")
	one(t, ents, PERIOD, "January 12 , 2004")
	one(t, ents, PLC, "New York")
}

func TestRecognizeQuarter(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Earnings for Q4 beat estimates in the fourth quarter.")
	got := find(ents, PERIOD)
	if len(got) != 2 || got[0] != "Q4" || got[1] != "fourth quarter" {
		t.Fatalf("periods = %v", got)
	}
}

func TestRecognizeTime(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The call starts at 3:30 pm on Monday.")
	one(t, ents, TIM, "3 : 30 pm")
	one(t, ents, PERIOD, "Monday")
}

func TestRecognizeLength(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The campus spans 40 acres near Austin.")
	one(t, ents, LNGTH, "40 acres")
	one(t, ents, PLC, "Austin")
}

func TestRecognizeProduct(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("They shipped WebSphere to enterprise customers.")
	one(t, ents, PROD, "WebSphere")
}

func TestRecognizeObject(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The restructuring was called Project Horizon internally.")
	one(t, ents, OBJ, "Project Horizon")
}

func TestRecognizeSentenceInitialArticleNotInOrg(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The Averon Labs annual report explains how revenue is recognized.")
	for _, e := range ents {
		if e.Category == ORG && (e.Text == "The Averon Labs" || e.Text[:4] == "The ") {
			t.Fatalf("article absorbed into ORG: %q", e.Text)
		}
	}
	one(t, ents, ORG, "Averon Labs")
}

func TestRecognizeNoFalsePositiveLowercase(t *testing.T) {
	r := NewRecognizer()
	// "may" is a month only when capitalized mid-pattern; lowercase "may"
	// must not be a PERIOD.
	ents := r.RecognizeText("the outcome may vary")
	if got := find(ents, PERIOD); len(got) != 0 {
		t.Fatalf("PERIOD = %v, want none", got)
	}
}

func TestRecognizeEntitiesAreNonOverlapping(t *testing.T) {
	r := NewRecognizer()
	text := "IBM paid $160 million for Daksh on January 12, 2004 and Mr. Smith, the new CEO, praised the 10% growth in New York."
	ents := r.RecognizeText(text)
	prev := -1
	for _, e := range ents {
		if e.TokenStart < prev {
			t.Fatalf("overlapping entities: %+v", ents)
		}
		prev = e.TokenEnd
	}
	if len(ents) < 6 {
		t.Fatalf("expected rich annotation, got %+v", ents)
	}
}

func TestRecognizeByteOffsets(t *testing.T) {
	r := NewRecognizer()
	text := "IBM acquired Daksh for $160 million."
	for _, e := range r.RecognizeText(text) {
		if e.Start < 0 || e.End > len(text) || e.Start >= e.End {
			t.Errorf("bad span %+v", e)
		}
	}
}

func TestRecognizeEmpty(t *testing.T) {
	r := NewRecognizer()
	if ents := r.RecognizeText(""); len(ents) != 0 {
		t.Errorf("empty: %v", ents)
	}
}

func TestMissRateDropsSomeEntities(t *testing.T) {
	text := "IBM acquired Daksh. Microsoft bought Intel shares. Oracle sued Google. Cisco hired Dell executives. Accenture met Infosys and Wipro in Bangalore and London and Tokyo."
	full := NewRecognizer().RecognizeText(text)
	lossy := NewRecognizer(WithMissRate(0.5, 42)).RecognizeText(text)
	if len(lossy) >= len(full) {
		t.Fatalf("miss rate dropped nothing: full=%d lossy=%d", len(full), len(lossy))
	}
	if len(lossy) == 0 {
		t.Fatal("miss rate dropped everything")
	}
	// Determinism: same config, same output.
	again := NewRecognizer(WithMissRate(0.5, 42)).RecognizeText(text)
	if len(again) != len(lossy) {
		t.Fatalf("miss injection not deterministic: %d vs %d", len(again), len(lossy))
	}
}

// Property: entities never overlap and always lie within token bounds.
func TestRecognizePropertyNonOverlap(t *testing.T) {
	r := NewRecognizer()
	f := func(s string) bool {
		toks := textproc.Tokenize(s)
		prev := -1
		for _, e := range r.Recognize(toks) {
			if e.TokenStart < 0 || e.TokenEnd > len(toks) || e.TokenStart >= e.TokenEnd {
				return false
			}
			if e.TokenStart < prev {
				return false
			}
			prev = e.TokenEnd
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRecognize(b *testing.B) {
	r := NewRecognizer()
	toks := textproc.Tokenize("IBM paid $160 million for Daksh on January 12, 2004 and Mr. Smith, the new CEO, praised the 10% growth in New York.")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Recognize(toks)
	}
}
