package ner

import (
	"testing"

	"etap/internal/textproc"
)

// FuzzRecognize asserts recognizer totality: no panics, non-overlapping
// in-order entities, spans within token bounds, and every entity's
// category in the 13-category inventory.
func FuzzRecognize(f *testing.F) {
	for _, s := range []string{
		"",
		"IBM acquired Daksh for $160 million on January 12, 2004.",
		"Mr. J. K. Smith, the new Chief Executive Officer, arrived at 3:30 pm.",
		"growth of 10% and 3.5 percentage points over 40 acres",
		"Q4 2004 fourth quarter last year next month",
		"$ % 1234 . . . Inc Corp Ltd",
		"mr mrs dr MR. DR.",
		"\xff\xfe broken bytes $5",
	} {
		f.Add(s)
	}
	valid := map[Category]bool{}
	for _, c := range Categories {
		valid[c] = true
	}
	rec := NewRecognizer()
	f.Fuzz(func(t *testing.T, s string) {
		tokens := textproc.Tokenize(s)
		prev := -1
		for _, e := range rec.Recognize(tokens) {
			if !valid[e.Category] {
				t.Fatalf("unknown category %q", e.Category)
			}
			if e.TokenStart < 0 || e.TokenEnd > len(tokens) || e.TokenStart >= e.TokenEnd {
				t.Fatalf("bad token span %+v", e)
			}
			if e.TokenStart < prev {
				t.Fatalf("overlap at %+v", e)
			}
			prev = e.TokenEnd
			if e.Start < 0 || e.End > len(s) || e.Start >= e.End {
				t.Fatalf("bad byte span %+v for %q", e, s)
			}
			if e.Text == "" {
				t.Fatalf("empty entity text: %+v", e)
			}
		}
	})
}
