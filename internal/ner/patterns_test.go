package ner

import (
	"testing"
)

// Extended table-driven coverage of the numeric and calendar patterns.
func TestNumericPatterns(t *testing.T) {
	r := NewRecognizer()
	cases := []struct {
		text string
		cat  Category
		want string
	}{
		// CURRENCY variants
		{"the deal was worth $5 billion overall", CURRENCY, "$ 5 billion"},
		{"they paid €20 million for the unit", CURRENCY, "€ 20 million"},
		{"a fine of $250 was imposed", CURRENCY, "$ 250"},
		{"the firm raised 30 million euros quickly", CURRENCY, "30 million euros"},
		{"he earned 90 cents per share", CURRENCY, "90 cents"},
		{"revenue reached 2 billion rupees in total", CURRENCY, "2 billion rupees"},
		// PRCNT variants
		{"growth of 12 pct was reported", PRCNT, "12 pct"},
		{"margins moved 2 percentage points higher", PRCNT, "2 percentage points"},
		{"a 3.5% rise followed", PRCNT, "3.5 %"},
		// TIM variants
		{"the call begins at 9 am sharp", TIM, "9 am"},
		{"markets close at 4 : 00 in New York", TIM, "4 : 00"},
		// PERIOD variants
		{"results arrive in Q1 2005 as planned", PERIOD, "Q1 2005"},
		{"the first half was strong", PERIOD, "first half"},
		{"she joined last week officially", PERIOD, "last week"},
		{"earnings due on March 3 were delayed", PERIOD, "March 3"},
		// LNGTH variants
		{"the warehouse covers 90,000 square feet of space", LNGTH, "90,000 square feet"},
		{"they stored 12 terabytes of logs", LNGTH, "12 terabytes"},
		// CNT and YEAR
		{"the firm hired 75 engineers", CNT, "75"},
		{"founded in 1985 by two brothers", YEAR, "1985"},
	}
	for _, c := range cases {
		ents := r.RecognizeText(c.text)
		found := false
		for _, e := range ents {
			if e.Category == c.cat && e.Text == c.want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%q: want %s %q, got %+v", c.text, c.cat, c.want, ents)
		}
	}
}

func TestYearBoundaries(t *testing.T) {
	r := NewRecognizer()
	// 4-digit numbers outside 1900-2099 are counts, not years.
	ents := r.RecognizeText("they produced 5000 units in 1750 days")
	for _, e := range ents {
		if e.Category == YEAR {
			t.Errorf("non-year classified as YEAR: %+v", e)
		}
	}
	ents = r.RecognizeText("in 2099 the lease expires")
	found := false
	for _, e := range ents {
		if e.Category == YEAR && e.Text == "2099" {
			found = true
		}
	}
	if !found {
		t.Errorf("2099 not a year: %+v", ents)
	}
}

func TestPersonMiddleInitial(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("The board elected James R. Smith yesterday.")
	got := find(ents, PRSN)
	if len(got) != 1 || got[0] != "James R . Smith" {
		t.Errorf("persons = %v", got)
	}
}

func TestDesignationPriorityOverPerson(t *testing.T) {
	r := NewRecognizer()
	// "President" alone is a designation, not part of a name.
	ents := r.RecognizeText("The President spoke to analysts.")
	if got := find(ents, DESIG); len(got) != 1 || got[0] != "President" {
		t.Errorf("desig = %v (all %+v)", got, ents)
	}
}

func TestOrgSuffixAbsorption(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("Shares of Meridian Holdings Ltd fell.")
	got := find(ents, ORG)
	if len(got) != 1 || got[0] != "Meridian Holdings Ltd" {
		t.Errorf("orgs = %v", got)
	}
}

func TestCurrencyBeatsCount(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("they spent $40 million on 3 buildings")
	if got := find(ents, CURRENCY); len(got) != 1 {
		t.Fatalf("currency = %v", got)
	}
	if got := find(ents, CNT); len(got) != 1 || got[0] != "3" {
		t.Errorf("counts = %v", got)
	}
}

func TestMonthWithoutCapitalIsNotPeriod(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("they may march to the square")
	if got := find(ents, PERIOD); len(got) != 0 {
		t.Errorf("periods = %v", got)
	}
}

func TestEntitySpanAccessors(t *testing.T) {
	r := NewRecognizer()
	ents := r.RecognizeText("IBM acquired Daksh.")
	if len(ents) != 2 {
		t.Fatalf("ents = %+v", ents)
	}
	if ents[0].Span() != 1 {
		t.Errorf("span = %d", ents[0].Span())
	}
}

func TestCategoriesList(t *testing.T) {
	if len(Categories) != 13 {
		t.Fatalf("the recognizer defines %d categories, the paper 13", len(Categories))
	}
	seen := map[Category]bool{}
	for _, c := range Categories {
		if seen[c] {
			t.Errorf("duplicate category %s", c)
		}
		seen[c] = true
	}
}
