package ner

import (
	"strings"

	"etap/internal/gazetteer"
)

// phraseTable indexes multi-token gazetteer phrases by their lower-cased
// first token. Matching tries the longest phrase first.
type phraseTable struct {
	// byFirst maps the first token (lower-cased) to candidate phrases,
	// each a slice of lower-cased tokens, sorted longest first.
	byFirst map[string][][]string
	cat     Category
}

func newPhraseTable(cat Category, phrases []string) *phraseTable {
	t := &phraseTable{byFirst: make(map[string][][]string), cat: cat}
	for _, p := range phrases {
		toks := strings.Fields(strings.ToLower(p))
		if len(toks) == 0 {
			continue
		}
		t.byFirst[toks[0]] = append(t.byFirst[toks[0]], toks)
	}
	for k, list := range t.byFirst {
		// longest first (stable insertion order breaks ties)
		for i := 1; i < len(list); i++ {
			for j := i; j > 0 && len(list[j]) > len(list[j-1]); j-- {
				list[j], list[j-1] = list[j-1], list[j]
			}
		}
		t.byFirst[k] = list
	}
	return t
}

// match reports the number of tokens matched starting at lowered[i]
// (0 if none). lowered holds the lower-cased surface forms.
func (t *phraseTable) match(lowered []string, i int) int {
	cands, ok := t.byFirst[lowered[i]]
	if !ok {
		return 0
	}
outer:
	for _, cand := range cands {
		if i+len(cand) > len(lowered) {
			continue
		}
		for j := 1; j < len(cand); j++ {
			if lowered[i+j] != cand[j] {
				continue outer
			}
		}
		return len(cand)
	}
	return 0
}

// gazetteers bundles every lookup structure the recognizer needs.
type gazetteers struct {
	designations *phraseTable
	places       *phraseTable
	products     *phraseTable
	objects      *phraseTable
	lengthUnits  *phraseTable

	knownOrgs    map[string]bool // lower-cased full org names
	companyCores map[string]bool // lower-cased single-token cores
	orgSuffixes  map[string]bool // lower-cased corporate suffixes
	firstNames   map[string]bool
	lastNames    map[string]bool
	months       map[string]bool
	weekdays     map[string]bool
}

func toSet(words []string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[strings.ToLower(w)] = true
	}
	return m
}

func defaultGazetteers() *gazetteers {
	return &gazetteers{
		designations: newPhraseTable(DESIG, gazetteer.Designations),
		places:       newPhraseTable(PLC, gazetteer.Places),
		products:     newPhraseTable(PROD, gazetteer.Products),
		objects:      newPhraseTable(OBJ, gazetteer.Objects),
		lengthUnits:  newPhraseTable(LNGTH, gazetteer.LengthUnits),
		knownOrgs:    toSet(gazetteer.KnownOrgs),
		companyCores: toSet(gazetteer.CompanyCores),
		orgSuffixes:  toSet(gazetteer.CompanySuffixes),
		firstNames:   toSet(gazetteer.FirstNames),
		lastNames:    toSet(gazetteer.LastNames),
		months:       toSet(gazetteer.Months),
		weekdays:     toSet(gazetteer.Weekdays),
	}
}
