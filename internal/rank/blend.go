// Blended ranking: combining the corpus-driven lead score with a
// tenant's ICP-fit score into one ordering. Kept in rank (not tenant)
// because it is pure scoring arithmetic with the same determinism
// contract as ByScore: equal inputs produce an identical order, with
// snippet-ID tie-breaks.
package rank

import "sort"

// BlendWeights sets the mix between the base lead score and the ICP
// score. Weights are used as given; DefaultBlend is the production mix.
type BlendWeights struct {
	// Base multiplies the lead's rank score.
	Base float64
	// ICP multiplies the tenant's ICP-fit score.
	ICP float64
}

// DefaultBlend favors evidence strength over profile fit: a strong
// trigger event at a mediocre-fit company still outranks a weak event
// at a perfect-fit one.
var DefaultBlend = BlendWeights{Base: 0.6, ICP: 0.4}

// Blend combines a base score and an ICP score under the given weights.
func Blend(base, icp float64, w BlendWeights) float64 {
	return w.Base*base + w.ICP*icp
}

// BlendRanked is an event with its tenant-scoped scores and final rank.
type BlendRanked struct {
	Event
	// Rank is the 1-based position in the blended order.
	Rank int `json:"rank"`
	// ICP is the tenant's ICP-fit score for this event's company.
	ICP float64 `json:"icp"`
	// Blended is the combined score the order sorts by.
	Blended float64 `json:"blended"`
}

// ByBlend orders events by blended score, descending. icp supplies the
// ICP-fit score per event. Ties break by base score (descending), then
// snippet ID (ascending), so the order is deterministic for equal
// inputs.
func ByBlend(events []Event, icp func(Event) float64, w BlendWeights) []BlendRanked {
	out := make([]BlendRanked, 0, len(events))
	for _, ev := range events {
		fit := icp(ev)
		out = append(out, BlendRanked{
			Event:   ev,
			ICP:     fit,
			Blended: Blend(ev.Score, fit, w),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Blended != out[j].Blended {
			return out[i].Blended > out[j].Blended
		}
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].SnippetID < out[j].SnippetID
	})
	for i := range out {
		out[i].Rank = i + 1
	}
	return out
}
