package rank

import (
	"fmt"
	"sort"
	"strings"

	"etap/internal/ner"
)

// Profile aggregates everything ETAP extracted about one company — the
// per-company view a sales representative opens after the MRR ranking
// (Section 4) puts the company on their list.
type Profile struct {
	// Company is the display form (first surface reference seen).
	Company string
	// MRR is the Equation 2 aggregate.
	MRR float64
	// Events counts trigger events across all drivers.
	Events int
	// ByDriver counts events per sales driver.
	ByDriver map[string]int
	// Best is the company's highest-ranked trigger event.
	Best Ranked
	// Latest is the most recent resolvable event date, when any event
	// carries one (zero otherwise) — the freshness signal Section 6
	// asks for.
	Latest Date
}

// BuildProfiles groups ranked trigger events by (alias-resolved) company
// and aggregates them into profiles, sorted by descending MRR. rec and
// ref drive event-date resolution; a nil rec skips dates.
func BuildProfiles(ranked []Ranked, rec *ner.Recognizer, ref Date) []Profile {
	type acc struct {
		profile Profile
		rrSum   float64
	}
	byCompany := map[string]*acc{}
	for _, r := range ranked {
		if r.Company == "" || r.Rank <= 0 {
			continue
		}
		key := Canonical(r.Company)
		a, ok := byCompany[key]
		if !ok {
			a = &acc{profile: Profile{
				Company:  r.Company,
				ByDriver: map[string]int{},
				Best:     r,
			}}
			byCompany[key] = a
		}
		p := &a.profile
		p.Events++
		p.ByDriver[r.Driver]++
		a.rrSum += 1 / float64(r.Rank)
		if r.Rank < p.Best.Rank {
			p.Best = r
		}
		if rec != nil {
			if d, ok := EventDate(rec, r.Text, ref); ok {
				if p.Latest.IsZero() || d.MonthsSince(p.Latest) < 0 {
					p.Latest = d
				}
			}
		}
	}
	out := make([]Profile, 0, len(byCompany))
	for _, a := range byCompany {
		a.profile.MRR = a.rrSum / float64(a.profile.Events)
		out = append(out, a.profile)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MRR != out[j].MRR {
			return out[i].MRR > out[j].MRR
		}
		return out[i].Company < out[j].Company
	})
	return out
}

// String renders the profile as a one-line summary.
func (p Profile) String() string {
	var drivers []string
	for d, n := range p.ByDriver {
		drivers = append(drivers, fmt.Sprintf("%s:%d", d, n))
	}
	sort.Strings(drivers)
	date := "undated"
	if !p.Latest.IsZero() {
		date = fmt.Sprintf("%04d-%02d", p.Latest.Year, p.Latest.Month)
	}
	return fmt.Sprintf("%s MRR=%.3f events=%d [%s] latest=%s",
		p.Company, p.MRR, p.Events, strings.Join(drivers, " "), date)
}
