package rank

import (
	"sort"
	"strconv"
	"strings"

	"etap/internal/ner"
	"etap/internal/textproc"
)

// The paper's sales-driver-specific alternative to lexicon scoring:
// "for the revenue growth sales driver, trigger events may be ordered
// based on the percentage change in the revenue ... This requires
// extraction of exact revenue growth figures from snippets."

// upWords and downWords signal the direction of a revenue change near a
// percentage figure (compared on stems).
var upWords = map[string]bool{}
var downWords = map[string]bool{}

func init() {
	for _, w := range []string{
		"up", "rose", "rise", "grew", "grow", "growth", "increase",
		"increased", "climbed", "jumped", "expanded", "advanced", "gain",
		"gained", "higher", "beat",
	} {
		upWords[textproc.Stem(w)] = true
	}
	for _, w := range []string{
		"down", "fell", "fall", "decline", "declined", "decrease",
		"decreased", "dropped", "slid", "slide", "shrank", "lower",
		"loss", "losses", "shortfall", "contraction",
	} {
		downWords[textproc.Stem(w)] = true
	}
}

// GrowthFigure extracts the signed revenue-change percentage from a
// snippet: the percentage entity whose surrounding words indicate an
// up or down movement. When several figures appear, the one with the
// largest magnitude wins (the headline number). ok is false when no
// directed percentage is found.
func GrowthFigure(rec *ner.Recognizer, text string) (float64, bool) {
	tokens := textproc.Tokenize(text)
	entities := rec.Recognize(tokens)

	best := 0.0
	found := false
	for _, e := range entities {
		if e.Category != ner.PRCNT {
			continue
		}
		val, err := parsePercent(e.Text)
		if err != nil {
			continue
		}
		dir := direction(tokens, e.TokenStart, e.TokenEnd)
		if dir == 0 {
			continue
		}
		signed := val * float64(dir)
		if !found || abs(signed) > abs(best) {
			best = signed
			found = true
		}
	}
	return best, found
}

// parsePercent extracts the numeric value from a PRCNT entity surface
// ("10 %", "3.5 percent").
func parsePercent(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, strconv.ErrSyntax
	}
	return strconv.ParseFloat(strings.ReplaceAll(fields[0], ",", ""), 64)
}

// direction scans a window of words around the percentage for movement
// vocabulary: +1 up, -1 down, 0 unknown.
func direction(tokens []textproc.Token, start, end int) int {
	const window = 6
	lo := start - window
	if lo < 0 {
		lo = 0
	}
	hi := end + window
	if hi > len(tokens) {
		hi = len(tokens)
	}
	// Nearest directed word wins; search outward from the entity.
	bestDist := window + 1
	dir := 0
	for i := lo; i < hi; i++ {
		if i >= start && i < end {
			continue
		}
		if !tokens[i].IsWord() {
			continue
		}
		stem := textproc.Stem(tokens[i].Lower())
		var d int
		switch {
		case upWords[stem]:
			d = 1
		case downWords[stem]:
			d = -1
		default:
			continue
		}
		dist := i - end
		if i < start {
			dist = start - i
		}
		if dist < bestDist {
			bestDist = dist
			dir = d
		}
	}
	return dir
}

// ByGrowthFigure ranks revenue-growth events by the magnitude of their
// extracted percentage change, falling back to classifier score for
// events without a figure. Each event's Orientation is set to the signed
// figure so callers can display it.
func ByGrowthFigure(events []Event, rec *ner.Recognizer) []Ranked {
	type scored struct {
		ev     Event
		figure float64
		has    bool
	}
	ss := make([]scored, len(events))
	for i, e := range events {
		fig, ok := GrowthFigure(rec, e.Text)
		if ok {
			e.Orientation = fig
		}
		ss[i] = scored{ev: e, figure: fig, has: ok}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		a, b := ss[i], ss[j]
		if a.has != b.has {
			return a.has // events with figures first
		}
		if a.has {
			if abs(a.figure) != abs(b.figure) {
				return abs(a.figure) > abs(b.figure)
			}
		}
		if a.ev.Score != b.ev.Score {
			return a.ev.Score > b.ev.Score
		}
		return a.ev.SnippetID < b.ev.SnippetID
	})
	out := make([]Ranked, len(ss))
	for i, s := range ss {
		out[i] = Ranked{Event: s.ev, Rank: i + 1}
	}
	return out
}
