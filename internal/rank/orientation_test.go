package rank

import (
	"testing"

	"etap/internal/corpus"
	"etap/internal/index"
	"etap/internal/textproc"
)

func TestLexiconScoreStrongPhrases(t *testing.T) {
	lx := DefaultRevenueLexicon()
	strong := lx.Score("The company posted a sharp decline in sales.")
	weak := lx.Score("The company posted a decline in sales.")
	if strong >= weak {
		t.Fatalf("strong phrase (%v) should be more negative than weak word (%v)", strong, weak)
	}
}

func TestLexiconScoreLongestMatchWins(t *testing.T) {
	lx := Lexicon{"decline": -1, "sharp decline": -3}
	got := lx.Score("a sharp decline happened")
	if got != -3 {
		t.Fatalf("score = %v, want -3 (no double counting)", got)
	}
}

func TestLexiconScorePositive(t *testing.T) {
	lx := DefaultRevenueLexicon()
	if got := lx.Score("The firm reported significant growth and a solid quarter."); got < 5 {
		t.Fatalf("score = %v, want strongly positive", got)
	}
}

func TestLexiconScoreNeutral(t *testing.T) {
	lx := DefaultRevenueLexicon()
	if got := lx.Score("The weather stayed pleasant in the city."); got != 0 {
		t.Fatalf("neutral text scored %v", got)
	}
}

func TestLexiconScoreStemmedFallback(t *testing.T) {
	lx := Lexicon{textproc.Stem("profits"): 1} // entry stored under stem
	if got := lx.Score("Profits soared."); got != 1 {
		t.Fatalf("stem fallback failed: %v", got)
	}
}

func TestLexiconApply(t *testing.T) {
	lx := DefaultRevenueLexicon()
	events := []Event{
		{SnippetID: "a", Text: "significant growth this quarter"},
		{SnippetID: "b", Text: "severe losses in the unit"},
	}
	out := lx.Apply(events)
	if out[0].Orientation <= 0 || out[1].Orientation >= 0 {
		t.Fatalf("orientations = %+v", out)
	}
	if events[0].Orientation != 0 {
		t.Fatal("Apply mutated its input")
	}
}

func TestLexiconEntriesSorted(t *testing.T) {
	lx := Lexicon{"good": 2, "bad": -2, "fine": 1}
	entries := lx.Entries()
	if len(entries) != 3 || entries[0] != "good" || entries[2] != "bad" {
		t.Fatalf("entries = %v", entries)
	}
}

func TestInduceLexiconPMI(t *testing.T) {
	ix := index.New()
	// "surge" co-occurs with positive seeds, "slump" with negative ones.
	ix.Add("p1", "the surge was excellent and strong this year")
	ix.Add("p2", "an excellent surge in demand looked strong")
	ix.Add("p3", "strong excellent outlook with a surge")
	ix.Add("n1", "the slump was poor and weak across units")
	ix.Add("n2", "a poor weak quarter deepened the slump")
	ix.Add("n3", "weak poor forecasts and a slump")
	ix.Add("bg", "neutral filler text about gardens and music")

	lx := InduceLexicon(ix,
		[]string{"excellent", "strong"},
		[]string{"poor", "weak"},
		[]string{"surge", "slump", "gardens", "unknownword"},
	)
	if lx["surge"] <= 0 {
		t.Errorf("SO(surge) = %v, want positive", lx["surge"])
	}
	if lx["slump"] >= 0 {
		t.Errorf("SO(slump) = %v, want negative", lx["slump"])
	}
	if _, ok := lx["unknownword"]; ok {
		t.Error("unknown word received an entry")
	}
	if v := lx["surge"]; v > 3.5 || v < -3.5 {
		t.Errorf("weight %v outside clamp range", v)
	}
}

// Every orientation phrase the corpus generator embeds must be covered
// by the default lexicon with the correct sign — otherwise Figure 8's
// ranking would silently ignore generated signal.
func TestDefaultLexiconCoversCorpusPhrases(t *testing.T) {
	lx := DefaultRevenueLexicon()
	for _, p := range corpus.PositivePhrases() {
		if w, ok := lx[p]; !ok || w <= 0 {
			t.Errorf("positive phrase %q: weight %v, ok %v", p, w, ok)
		}
	}
	for _, p := range corpus.NegativePhrases() {
		if w, ok := lx[p]; !ok || w >= 0 {
			t.Errorf("negative phrase %q: weight %v, ok %v", p, w, ok)
		}
	}
}

func BenchmarkLexiconScore(b *testing.B) {
	lx := DefaultRevenueLexicon()
	text := "The company posted significant growth with a solid quarter despite a sharp decline in one unit and severe losses abroad."
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lx.Score(text)
	}
}
