package rank

import (
	"math"
	"strconv"
	"strings"

	"etap/internal/ner"
	"etap/internal/textproc"
)

// Date is a coarse month-granularity date — enough to judge whether a
// trigger event "belongs to a relevant time period" (Section 6).
type Date struct {
	Year  int
	Month int // 1-12; 0 when only the year is known
}

// IsZero reports whether the date is unset.
func (d Date) IsZero() bool { return d.Year == 0 }

// MonthsSince returns the (approximate) number of months from d to ref;
// negative when d is in the future relative to ref.
func (d Date) MonthsSince(ref Date) float64 {
	dm, rm := d.Month, ref.Month
	if dm == 0 {
		dm = 6 // mid-year assumption for year-only dates
	}
	if rm == 0 {
		rm = 6
	}
	return float64((ref.Year-d.Year)*12 + (rm - dm))
}

var monthIndex = map[string]int{
	"january": 1, "february": 2, "march": 3, "april": 4, "may": 5,
	"june": 6, "july": 7, "august": 8, "september": 9, "october": 10,
	"november": 11, "december": 12,
}

// ResolvePeriod resolves a PERIOD or YEAR expression to a Date, given the
// reference date ref — the paper's future-work item "methods need to be
// developed to resolve phrases such as 'last year' and 'previous
// quarter'". Unresolvable expressions return ok=false.
func ResolvePeriod(expr string, ref Date) (Date, bool) {
	words := textproc.Words(expr)
	lower := strings.ToLower(expr)

	// Relative expressions.
	switch {
	case strings.Contains(lower, "last year"), strings.Contains(lower, "previous year"):
		return Date{Year: ref.Year - 1}, true
	case strings.Contains(lower, "this year"):
		return Date{Year: ref.Year}, true
	case strings.Contains(lower, "next year"):
		return Date{Year: ref.Year + 1}, true
	case strings.Contains(lower, "last quarter"), strings.Contains(lower, "previous quarter"):
		m := ref.Month - 3
		y := ref.Year
		if m <= 0 {
			m += 12
			y--
		}
		return Date{Year: y, Month: m}, true
	case strings.Contains(lower, "this quarter"), strings.Contains(lower, "next quarter"):
		return Date{Year: ref.Year, Month: ref.Month}, true
	case strings.Contains(lower, "last month"), strings.Contains(lower, "previous month"):
		m, y := ref.Month-1, ref.Year
		if m <= 0 {
			m, y = 12, y-1
		}
		return Date{Year: y, Month: m}, true
	case strings.Contains(lower, "next month"), strings.Contains(lower, "this month"),
		strings.Contains(lower, "last week"), strings.Contains(lower, "this week"), strings.Contains(lower, "next week"):
		return Date{Year: ref.Year, Month: ref.Month}, true
	}

	// Absolute expressions: month name and/or a 4-digit year.
	var out Date
	for _, w := range words {
		if m, ok := monthIndex[w]; ok {
			out.Month = m
		}
	}
	for _, f := range strings.FieldsFunc(expr, func(r rune) bool {
		return r < '0' || r > '9'
	}) {
		if len(f) == 4 {
			if y, err := strconv.Atoi(f); err == nil && y >= 1900 && y <= 2099 {
				out.Year = y
			}
		}
	}
	// Quarter expressions: "Q4 2004", "the fourth quarter". The list is
	// ordered so an expression naming two quarters resolves the same way
	// every run (the first listed match wins).
	if out.Month == 0 {
		for _, qm := range []struct {
			q string
			m int
		}{
			{"q1", 2}, {"q2", 5}, {"q3", 8}, {"q4", 11},
			{"first", 2}, {"second", 5}, {"third", 8}, {"fourth", 11},
		} {
			if strings.Contains(lower, qm.q) && (strings.Contains(lower, "quarter") || qm.q[0] == 'q') {
				out.Month = qm.m
				break
			}
		}
	}
	if out.Year == 0 && out.Month != 0 {
		out.Year = ref.Year // bare month: assume the reference year
	}
	return out, !out.IsZero()
}

// EventDate extracts the most specific resolvable date from a snippet by
// running the recognizer over it and resolving its PERIOD and YEAR
// entities. The latest resolvable date wins (news snippets report the
// newest fact last). ok is false when nothing resolves.
func EventDate(rec *ner.Recognizer, text string, ref Date) (Date, bool) {
	var best Date
	found := false
	for _, e := range rec.RecognizeText(text) {
		if e.Category != ner.PERIOD && e.Category != ner.YEAR {
			continue
		}
		d, ok := ResolvePeriod(e.Text, ref)
		if !ok {
			continue
		}
		if !found || d.MonthsSince(best) < 0 {
			best = d
			found = true
		}
	}
	return best, found
}

// RecencyWeight maps an event date to a multiplicative weight in (0, 1]:
// exponential decay with the given half-life in months. Events without a
// date (zero Date) get the neutral weight 0.5 — the paper's observation
// that misleading biography snippets "can be further tackled by the
// ranking component by making the score ... a function of the time period
// associated with the snippet".
func RecencyWeight(d Date, ref Date, halfLifeMonths float64) float64 {
	if d.IsZero() {
		return 0.5
	}
	age := d.MonthsSince(ref)
	if age < 0 {
		age = 0 // future-dated events are "now"
	}
	if halfLifeMonths <= 0 {
		halfLifeMonths = 12
	}
	return math.Exp2(-age / halfLifeMonths)
}

// ByScoreAndTime ranks events by classifier score multiplied by recency
// weight — the time-aware extension of the Figure 7 ranking.
func ByScoreAndTime(events []Event, rec *ner.Recognizer, ref Date, halfLifeMonths float64) []Ranked {
	weighted := make([]Event, len(events))
	for i, e := range events {
		d, _ := EventDate(rec, e.Text, ref)
		e.Score *= RecencyWeight(d, ref, halfLifeMonths)
		weighted[i] = e
	}
	return ByScore(weighted)
}
