package rank

import (
	"testing"

	"etap/internal/ner"
)

func TestGrowthFigureUp(t *testing.T) {
	rec := ner.NewRecognizer()
	got, ok := GrowthFigure(rec, "Acme Corp reported a revenue growth of 10% in the fourth quarter.")
	if !ok || got != 10 {
		t.Fatalf("got %v ok=%v, want +10", got, ok)
	}
}

func TestGrowthFigureDown(t *testing.T) {
	rec := ner.NewRecognizer()
	got, ok := GrowthFigure(rec, "Sales at Widget Inc fell 7 percent during the year.")
	if !ok || got != -7 {
		t.Fatalf("got %v ok=%v, want -7", got, ok)
	}
}

func TestGrowthFigureDecimal(t *testing.T) {
	rec := ner.NewRecognizer()
	got, ok := GrowthFigure(rec, "Margins rose 3.5 percent on strong demand.")
	if !ok || got != 3.5 {
		t.Fatalf("got %v ok=%v, want 3.5", got, ok)
	}
}

func TestGrowthFigureLargestWins(t *testing.T) {
	rec := ner.NewRecognizer()
	got, ok := GrowthFigure(rec, "Revenue grew 4% while the services unit expanded 22 percent.")
	if !ok || got != 22 {
		t.Fatalf("got %v ok=%v, want 22 (headline number)", got, ok)
	}
}

func TestGrowthFigureUndirectedIgnored(t *testing.T) {
	rec := ner.NewRecognizer()
	// A percentage with no movement word nearby is not a growth figure.
	if got, ok := GrowthFigure(rec, "The company owns 40% of the venture."); ok {
		t.Fatalf("undirected percent extracted: %v", got)
	}
}

func TestGrowthFigureNoPercent(t *testing.T) {
	rec := ner.NewRecognizer()
	if _, ok := GrowthFigure(rec, "Revenue grew strongly this quarter."); ok {
		t.Fatal("figure invented")
	}
}

func TestByGrowthFigureOrdering(t *testing.T) {
	rec := ner.NewRecognizer()
	events := []Event{
		{SnippetID: "small", Score: 0.99, Text: "Revenue at Acme rose 3% this quarter."},
		{SnippetID: "big", Score: 0.60, Text: "Sales at Widget Inc fell 31 percent during the year."},
		{SnippetID: "none", Score: 0.95, Text: "The outlook remains broadly unchanged."},
	}
	ranked := ByGrowthFigure(events, rec)
	if ranked[0].SnippetID != "big" {
		t.Fatalf("largest |figure| should rank first: %+v", ranked)
	}
	if ranked[2].SnippetID != "none" {
		t.Fatalf("figure-less events rank last: %+v", ranked)
	}
	if ranked[0].Orientation != -31 {
		t.Errorf("orientation not set to the signed figure: %v", ranked[0].Orientation)
	}
	for i, r := range ranked {
		if r.Rank != i+1 {
			t.Errorf("rank %d = %d", i, r.Rank)
		}
	}
}

func TestByGrowthFigureEmpty(t *testing.T) {
	rec := ner.NewRecognizer()
	if got := ByGrowthFigure(nil, rec); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
}
