// Package rank implements ETAP's snippet ranking component (Section 4):
// ordering trigger events by classifier confidence, sales-driver-specific
// scoring via a semantic-orientation lexicon (with PMI-IR induction as the
// automated alternative [14]), and the company-level mean-reciprocal-rank
// aggregate of Equation 2. It also implements the two future-work
// extensions the paper names: associating a time period with each trigger
// event, and resolving company-name variations.
package rank

import (
	"sort"
	"strings"
	"time"

	"etap/internal/obs"
)

// Stage instrumentation: ranking reports into the shared per-stage
// families of the process-wide registry, alongside snippet/annotate/
// classify from the extraction path.
var (
	rankDur   = obs.StageDuration(nil, "rank")
	rankItems = obs.StageItems(nil, "rank")
)

// Event is one extracted trigger event: a snippet, the sales driver it
// fired for, the classifier's confidence, and provenance.
type Event struct {
	SnippetID string
	Text      string
	Driver    string
	Company   string
	// Score is the classifier's positive-class probability ("The
	// simplest scoring function is the posterior probability of the
	// sales-driver class").
	Score float64
	// Orientation is the semantic-orientation score, set by an
	// orientation Lexicon when used.
	Orientation float64
}

// Ranked is an event with its assigned 1-based rank.
type Ranked struct {
	Event
	Rank int
}

// ByScore sorts events by descending classifier score (ties broken by
// snippet id for determinism) and assigns ranks — the Figure 7 view.
func ByScore(events []Event) []Ranked {
	return rankBy(events, func(a, b Event) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.SnippetID < b.SnippetID
	})
}

// ByOrientation sorts events by descending absolute orientation — the
// strongest-sense snippets first, as in Figure 8 — and assigns ranks.
func ByOrientation(events []Event) []Ranked {
	return rankBy(events, func(a, b Event) bool {
		aa, ab := abs(a.Orientation), abs(b.Orientation)
		if aa != ab {
			return aa > ab
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.SnippetID < b.SnippetID
	})
}

func rankBy(events []Event, less func(a, b Event) bool) []Ranked {
	//etaplint:ignore determinism -- metrics-only timing: the timestamp feeds the latency histogram, never a ranking
	defer rankDur.ObserveSince(time.Now())
	rankItems.Add(uint64(len(events)))
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return less(sorted[i], sorted[j]) })
	out := make([]Ranked, len(sorted))
	for i, e := range sorted {
		out[i] = Ranked{Event: e, Rank: i + 1}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// CompanyScore is the aggregate of Equation 2 for one company.
type CompanyScore struct {
	Company string
	// MRR is the mean-reciprocal-rank aggregate over all the company's
	// trigger events across all sales drivers.
	MRR float64
	// Events is Σ_i |TE(c, sd_i)|.
	Events int
}

// CompanyMRR computes MRR(c) (Equation 2) from per-driver rankings:
//
//	MRR(c) = Σ_i Σ_j 1/rank(te_j(c, sd_i))  /  Σ_i |TE(c, sd_i)|
//
// The input is the concatenation of the per-driver ranked lists; events
// without a company are skipped. Company identity uses canonical alias
// resolution (see Canonical). Results are sorted by descending MRR, ties
// by company name.
func CompanyMRR(ranked []Ranked) []CompanyScore {
	type acc struct {
		sum   float64
		count int
		name  string // first surface form seen, for display
	}
	byCompany := map[string]*acc{}
	for _, r := range ranked {
		if r.Company == "" || r.Rank <= 0 {
			continue
		}
		key := Canonical(r.Company)
		a, ok := byCompany[key]
		if !ok {
			a = &acc{name: r.Company}
			byCompany[key] = a
		}
		a.sum += 1 / float64(r.Rank)
		a.count++
	}
	out := make([]CompanyScore, 0, len(byCompany))
	for _, a := range byCompany {
		out = append(out, CompanyScore{
			Company: a.name,
			MRR:     a.sum / float64(a.count),
			Events:  a.count,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MRR != out[j].MRR {
			return out[i].MRR > out[j].MRR
		}
		return out[i].Company < out[j].Company
	})
	return out
}

// --- company alias resolution (future work: "we need to know all the
// variations to the reference of the company") -------------------------

// corporateSuffixes are stripped when canonicalizing a company name.
var corporateSuffixes = map[string]bool{
	"inc": true, "corp": true, "ltd": true, "llc": true, "plc": true,
	"group": true, "holdings": true, "co": true, "company": true,
	"incorporated": true, "corporation": true, "limited": true,
	"systems": true, "technologies": true, "industries": true,
	"partners": true, "solutions": true, "networks": true,
	"capital": true, "labs": true, "software": true, "enterprises": true,
}

// Canonical normalizes a company reference: lower-case, punctuation
// stripped, trailing corporate suffixes removed. "Halcyon Systems Inc",
// "Halcyon Systems" and "HALCYON" all canonicalize to "halcyon".
func Canonical(name string) string {
	fields := strings.Fields(strings.ToLower(strings.Map(dropPunct, name)))
	// Strip suffix tokens from the right, but never empty the name.
	for len(fields) > 1 && corporateSuffixes[fields[len(fields)-1]] {
		fields = fields[:len(fields)-1]
	}
	return strings.Join(fields, " ")
}

func dropPunct(r rune) rune {
	switch r {
	case '.', ',', '\'', '"', '(', ')':
		return -1
	}
	return r
}

// SameCompany reports whether two references resolve to the same company.
func SameCompany(a, b string) bool { return Canonical(a) == Canonical(b) }
