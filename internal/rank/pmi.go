package rank

import "math"

// CorpusStats is the slice of the search engine PMI-IR needs:
// document-frequency and proximity co-occurrence counts. Both the
// in-RAM index and the persistent segment index satisfy it.
type CorpusStats interface {
	// DocFreq returns the document frequency of one term.
	DocFreq(term string) int
	// CoNearFreq counts documents where the terms occur within window
	// positions of each other.
	CoNearFreq(a, b string, window int) int
}

// InduceLexicon builds a semantic-orientation lexicon automatically from
// seed words using the PMI-IR method of Turney [14], which the paper
// cites as the alternative to manual lexicon construction: the semantic
// orientation of a candidate word is
//
//	SO(w) = PMI(w, positive seeds) − PMI(w, negative seeds)
//
// with PMI estimated from NEAR co-occurrence counts in the search index
// (Turney's NEAR operator, here "within 10 tokens"), with add-0.01
// smoothing as in Turney's work.
func InduceLexicon(ix CorpusStats, posSeeds, negSeeds, candidates []string) Lexicon {
	const (
		smoothing  = 0.01
		nearWindow = 10
	)
	so := func(w string) float64 {
		var posHits, negHits float64 = smoothing, smoothing
		var posDF, negDF float64 = smoothing, smoothing
		for _, s := range posSeeds {
			posHits += float64(ix.CoNearFreq(w, s, nearWindow))
			posDF += float64(ix.DocFreq(s))
		}
		for _, s := range negSeeds {
			negHits += float64(ix.CoNearFreq(w, s, nearWindow))
			negDF += float64(ix.DocFreq(s))
		}
		// log2( (hits(w NEAR pos) * df(neg)) / (hits(w NEAR neg) * df(pos)) )
		return math.Log2((posHits * negDF) / (negHits * posDF))
	}

	lx := Lexicon{}
	for _, c := range candidates {
		if ix.DocFreq(c) == 0 {
			continue // unknown words get no entry
		}
		v := so(c)
		// Clamp to the manual lexicon's weight range for comparability.
		if v > 3.5 {
			v = 3.5
		}
		if v < -3.5 {
			v = -3.5
		}
		lx[c] = v
	}
	return lx
}
