package rank

import (
	"testing"

	"etap/internal/corpus"
	"etap/internal/index"
)

// TestInduceLexiconOnCorpus checks PMI-IR end to end on the generated
// world: induced weights must sign-agree with the known orientation of
// most candidate words (Turney reports ~80% accuracy; we require 70%).
func TestInduceLexiconOnCorpus(t *testing.T) {
	docs := corpus.NewGenerator(corpus.Config{
		Seed: 51, RelevantPerDriver: 80, BackgroundDocs: 200,
		HardNegativePerDriver: 20, FamousEventDocs: 4,
	}).World()
	ix := index.New()
	for _, d := range docs {
		ix.Add(d.URL, d.Text())
	}

	want := map[string]float64{
		"healthy": 1, "robust": 1, "impressive": 1, "solid": 1, "stellar": 1,
		"severe": -1, "sharp": -1, "steep": -1, "disappointing": -1, "painful": -1,
	}
	var candidates []string
	for w := range want {
		candidates = append(candidates, w)
	}
	lx := InduceLexicon(ix,
		[]string{"up", "rose", "grew", "increased"},
		[]string{"down", "fell", "declined", "losses"},
		candidates,
	)

	agree, total := 0, 0
	for w, sign := range want {
		v, ok := lx[w]
		if !ok {
			continue
		}
		total++
		if (v > 0) == (sign > 0) {
			agree++
		}
	}
	if total < 8 {
		t.Fatalf("only %d candidates found in the corpus", total)
	}
	if frac := float64(agree) / float64(total); frac < 0.7 {
		t.Errorf("sign agreement %.2f (%d/%d), want >= 0.7; lexicon %v",
			frac, agree, total, lx)
	}
}
