package rank

import (
	"testing"

	"etap/internal/ner"
)

var ref = Date{Year: 2005, Month: 6}

func TestResolvePeriodRelative(t *testing.T) {
	cases := map[string]Date{
		"last year":        {Year: 2004},
		"previous year":    {Year: 2004},
		"this year":        {Year: 2005},
		"next year":        {Year: 2006},
		"previous quarter": {Year: 2005, Month: 3},
		"last month":       {Year: 2005, Month: 5},
	}
	for in, want := range cases {
		got, ok := ResolvePeriod(in, ref)
		if !ok || got != want {
			t.Errorf("ResolvePeriod(%q) = %+v ok=%v, want %+v", in, got, ok, want)
		}
	}
}

func TestResolvePeriodQuarterYearBoundary(t *testing.T) {
	got, ok := ResolvePeriod("previous quarter", Date{Year: 2005, Month: 2})
	if !ok || got.Year != 2004 || got.Month != 11 {
		t.Fatalf("got %+v, want 2004-11", got)
	}
}

func TestResolvePeriodAbsolute(t *testing.T) {
	got, ok := ResolvePeriod("January 12, 2004", ref)
	if !ok || got.Year != 2004 || got.Month != 1 {
		t.Fatalf("got %+v", got)
	}
	got, ok = ResolvePeriod("2003", ref)
	if !ok || got.Year != 2003 || got.Month != 0 {
		t.Fatalf("got %+v", got)
	}
	got, ok = ResolvePeriod("March", ref)
	if !ok || got.Year != 2005 || got.Month != 3 {
		t.Fatalf("bare month: got %+v", got)
	}
}

func TestResolvePeriodQuarterExpressions(t *testing.T) {
	got, ok := ResolvePeriod("Q4 2004", ref)
	if !ok || got.Year != 2004 || got.Month != 11 {
		t.Fatalf("Q4 2004: got %+v", got)
	}
	got, ok = ResolvePeriod("the fourth quarter", ref)
	if !ok || got.Month != 11 || got.Year != 2005 {
		t.Fatalf("fourth quarter: got %+v", got)
	}
}

func TestResolvePeriodUnresolvable(t *testing.T) {
	if _, ok := ResolvePeriod("Friday", ref); ok {
		t.Error("weekday resolved without context")
	}
	if _, ok := ResolvePeriod("", ref); ok {
		t.Error("empty expression resolved")
	}
}

func TestEventDatePrefersLatest(t *testing.T) {
	rec := ner.NewRecognizer()
	text := "Mr. Smith was the CEO from 1990 to 1995. The board appointed a successor in January 2005."
	got, ok := EventDate(rec, text, ref)
	if !ok || got.Year != 2005 {
		t.Fatalf("got %+v ok=%v, want 2005", got, ok)
	}
}

func TestEventDateNone(t *testing.T) {
	rec := ner.NewRecognizer()
	if _, ok := EventDate(rec, "No dates appear in this sentence.", ref); ok {
		t.Error("date invented")
	}
}

func TestRecencyWeight(t *testing.T) {
	now := RecencyWeight(Date{Year: 2005, Month: 6}, ref, 12)
	old := RecencyWeight(Date{Year: 1995}, ref, 12)
	none := RecencyWeight(Date{}, ref, 12)
	if now != 1 {
		t.Errorf("current event weight = %v, want 1", now)
	}
	if old >= 0.01 {
		t.Errorf("decade-old event weight = %v, want tiny", old)
	}
	if none != 0.5 {
		t.Errorf("unknown-date weight = %v, want 0.5", none)
	}
	future := RecencyWeight(Date{Year: 2006}, ref, 12)
	if future != 1 {
		t.Errorf("future event weight = %v, want 1", future)
	}
}

func TestByScoreAndTimeDemotesBiographies(t *testing.T) {
	rec := ner.NewRecognizer()
	events := []Event{
		{SnippetID: "bio", Score: 0.95,
			Text: "Mr. Andersen was the CEO of Halcyon Systems from 1980 to 1985."},
		{SnippetID: "fresh", Score: 0.85,
			Text: "Halcyon Systems appointed James Smith as CEO in January 2005."},
	}
	ranked := ByScoreAndTime(events, rec, ref, 12)
	if ranked[0].SnippetID != "fresh" {
		t.Fatalf("time-aware ranking failed: %+v", ranked)
	}
}

func TestMonthsSince(t *testing.T) {
	if got := (Date{Year: 2004, Month: 6}).MonthsSince(ref); got != 12 {
		t.Errorf("MonthsSince = %v, want 12", got)
	}
	if got := (Date{Year: 2006, Month: 6}).MonthsSince(ref); got != -12 {
		t.Errorf("future MonthsSince = %v, want -12", got)
	}
}
