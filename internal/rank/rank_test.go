package rank

import (
	"math"
	"testing"
)

func TestByScoreOrdersDescending(t *testing.T) {
	events := []Event{
		{SnippetID: "a", Score: 0.3},
		{SnippetID: "b", Score: 0.9},
		{SnippetID: "c", Score: 0.6},
	}
	ranked := ByScore(events)
	if ranked[0].SnippetID != "b" || ranked[1].SnippetID != "c" || ranked[2].SnippetID != "a" {
		t.Fatalf("order = %+v", ranked)
	}
	for i, r := range ranked {
		if r.Rank != i+1 {
			t.Errorf("rank %d = %d", i, r.Rank)
		}
	}
}

func TestByScoreStableTieBreak(t *testing.T) {
	events := []Event{
		{SnippetID: "z", Score: 0.5},
		{SnippetID: "a", Score: 0.5},
	}
	ranked := ByScore(events)
	if ranked[0].SnippetID != "a" {
		t.Fatalf("tie break should be by snippet id: %+v", ranked)
	}
}

func TestByScoreDoesNotMutateInput(t *testing.T) {
	events := []Event{{SnippetID: "a", Score: 0.1}, {SnippetID: "b", Score: 0.9}}
	ByScore(events)
	if events[0].SnippetID != "a" {
		t.Fatal("input slice reordered")
	}
}

func TestByOrientationUsesMagnitude(t *testing.T) {
	events := []Event{
		{SnippetID: "weakpos", Orientation: 1},
		{SnippetID: "strongneg", Orientation: -3},
		{SnippetID: "strongpos", Orientation: 2.5},
	}
	ranked := ByOrientation(events)
	if ranked[0].SnippetID != "strongneg" || ranked[1].SnippetID != "strongpos" {
		t.Fatalf("order = %+v", ranked)
	}
}

func TestCompanyMRREquation2(t *testing.T) {
	// Company A: ranks 1 (driver d1) and 2 (driver d2) -> (1 + 0.5)/2.
	// Company B: rank 4 (d1) -> 0.25.
	ranked := []Ranked{
		{Event: Event{Company: "Acme Inc", Driver: "d1"}, Rank: 1},
		{Event: Event{Company: "Acme", Driver: "d2"}, Rank: 2},
		{Event: Event{Company: "Bolt Corp", Driver: "d1"}, Rank: 4},
	}
	scores := CompanyMRR(ranked)
	if len(scores) != 2 {
		t.Fatalf("scores = %+v", scores)
	}
	if scores[0].Company != "Acme Inc" || math.Abs(scores[0].MRR-0.75) > 1e-12 {
		t.Errorf("Acme: %+v", scores[0])
	}
	if scores[0].Events != 2 {
		t.Errorf("Acme events = %d, want 2 (alias merge)", scores[0].Events)
	}
	if scores[1].Company != "Bolt Corp" || math.Abs(scores[1].MRR-0.25) > 1e-12 {
		t.Errorf("Bolt: %+v", scores[1])
	}
}

func TestCompanyMRRSkipsAnonymous(t *testing.T) {
	ranked := []Ranked{
		{Event: Event{Company: ""}, Rank: 1},
		{Event: Event{Company: "Acme"}, Rank: 2},
	}
	scores := CompanyMRR(ranked)
	if len(scores) != 1 || scores[0].Company != "Acme" {
		t.Fatalf("scores = %+v", scores)
	}
}

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"Halcyon Systems Inc": "halcyon",
		"Halcyon Systems":     "halcyon",
		"HALCYON":             "halcyon",
		"Acme Corp.":          "acme",
		"Acme":                "acme",
		"Widget Holdings Ltd": "widget",
		"Inc":                 "inc", // never empty the name
		"Meridian Labs":       "meridian",
		"Northgate Capital":   "northgate",
		"Silverlake Group":    "silverlake",
	}
	for in, want := range cases {
		if got := Canonical(in); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSameCompany(t *testing.T) {
	if !SameCompany("Halcyon Systems Inc", "Halcyon Systems") {
		t.Error("suffix variation not merged")
	}
	if !SameCompany("ACME Corp", "Acme") {
		t.Error("case variation not merged")
	}
	if SameCompany("Halcyon Systems", "Meridian Systems") {
		t.Error("different companies merged")
	}
}

func TestByScoreEmpty(t *testing.T) {
	if got := ByScore(nil); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
	if got := CompanyMRR(nil); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
}
