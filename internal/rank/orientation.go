package rank

import (
	"sort"
	"strings"

	"etap/internal/textproc"
)

// Lexicon maps phrases (1-3 words, lower-case) to semantic-orientation
// weights. Positive weights indicate favourable business sense, negative
// weights unfavourable; larger magnitude means stronger sense ("Phrases
// that convey a stronger sense, e.g., 'sharp decline', 'worst losses' are
// weighted more than other phrases, e.g., 'loss' and 'profit'").
type Lexicon map[string]float64

// DefaultRevenueLexicon is the manually constructed lexicon for the
// revenue growth sales driver, mirroring the paper's examples.
func DefaultRevenueLexicon() Lexicon {
	return Lexicon{
		// strong positive phrases
		"significant growth": 3, "solid quarter": 3, "record results": 3,
		"strong performance": 3, "robust expansion": 3, "impressive gains": 3,
		"stellar quarter": 3, "healthy margins": 2.5, "record revenue": 3,
		// weak positive words
		"profit": 1, "growth": 1, "gain": 1, "increase": 1, "beat": 1,
		"rose": 1, "climbed": 1, "jumped": 1.5, "expanded": 1,
		// weak negative words
		"loss": -1, "decline": -1, "drop": -1, "fell": -1, "decrease": -1,
		"shortfall": -1.5, "slid": -1, "missed": -1,
		// strong negative phrases
		"severe losses": -3, "sharp decline": -3, "worst losses": -3.5,
		"steep drop": -3, "disappointing results": -2.5, "weak demand": -2,
		"heavy shortfall": -3, "painful contraction": -3,
	}
}

// maxPhraseLen is the longest phrase (in words) the scorer considers.
const maxPhraseLen = 3

// Score computes the semantic orientation of a snippet: the sum of the
// weights of matched phrases, longest match first (so "sharp decline"
// consumes both words and the weak "decline" entry does not double
// count). Matching is on lower-cased words with stemmed fallback for
// single words.
func (lx Lexicon) Score(text string) float64 {
	words := textproc.Words(text)
	score := 0.0
	for i := 0; i < len(words); {
		matched := 0
		for n := maxPhraseLen; n >= 1; n-- {
			if i+n > len(words) {
				continue
			}
			phrase := strings.Join(words[i:i+n], " ")
			if w, ok := lx[phrase]; ok {
				score += w
				matched = n
				break
			}
			if n == 1 {
				if w, ok := lx[textproc.Stem(words[i])]; ok {
					score += w
					matched = 1
				}
			}
		}
		if matched == 0 {
			matched = 1
		}
		i += matched
	}
	return score
}

// Apply sets every event's Orientation from the lexicon.
func (lx Lexicon) Apply(events []Event) []Event {
	out := make([]Event, len(events))
	for i, e := range events {
		e.Orientation = lx.Score(e.Text)
		out[i] = e
	}
	return out
}

// Entries returns the lexicon's phrases sorted by descending weight, for
// display and tests.
func (lx Lexicon) Entries() []string {
	out := make([]string, 0, len(lx))
	for p := range lx {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if lx[out[i]] != lx[out[j]] {
			return lx[out[i]] > lx[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}
