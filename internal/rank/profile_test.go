package rank

import (
	"math"
	"strings"
	"testing"

	"etap/internal/ner"
)

func profileInput() []Ranked {
	return []Ranked{
		{Event: Event{Company: "Acme Inc", Driver: "ma",
			Text: "Acme Inc acquired Widget in January 2005."}, Rank: 1},
		{Event: Event{Company: "Acme", Driver: "cim",
			Text: "Acme named a new CEO in 2003."}, Rank: 3},
		{Event: Event{Company: "Bolt Corp", Driver: "ma",
			Text: "Bolt Corp bought a rival."}, Rank: 2},
	}
}

func TestBuildProfilesAggregates(t *testing.T) {
	rec := ner.NewRecognizer()
	profiles := BuildProfiles(profileInput(), rec, Date{Year: 2005, Month: 6})
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	acme := profiles[0]
	if Canonical(acme.Company) != "acme" {
		t.Fatalf("first profile = %+v (alias merge + MRR order)", acme)
	}
	if acme.Events != 2 || acme.ByDriver["ma"] != 1 || acme.ByDriver["cim"] != 1 {
		t.Errorf("acme aggregation: %+v", acme)
	}
	wantMRR := (1.0 + 1.0/3.0) / 2
	if math.Abs(acme.MRR-wantMRR) > 1e-12 {
		t.Errorf("MRR = %v, want %v", acme.MRR, wantMRR)
	}
	if acme.Best.Rank != 1 {
		t.Errorf("best = %+v", acme.Best)
	}
	if acme.Latest.Year != 2005 || acme.Latest.Month != 1 {
		t.Errorf("latest = %+v, want 2005-01", acme.Latest)
	}
}

func TestBuildProfilesNilRecognizer(t *testing.T) {
	profiles := BuildProfiles(profileInput(), nil, Date{})
	for _, p := range profiles {
		if !p.Latest.IsZero() {
			t.Errorf("dates resolved without a recognizer: %+v", p)
		}
	}
}

func TestBuildProfilesSkipsAnonymous(t *testing.T) {
	in := []Ranked{{Event: Event{Driver: "ma", Text: "orphan"}, Rank: 1}}
	if got := BuildProfiles(in, nil, Date{}); len(got) != 0 {
		t.Fatalf("profiles from anonymous events: %+v", got)
	}
}

func TestProfileString(t *testing.T) {
	rec := ner.NewRecognizer()
	profiles := BuildProfiles(profileInput(), rec, Date{Year: 2005, Month: 6})
	s := profiles[0].String()
	for _, want := range []string{"MRR=", "events=2", "cim:1", "ma:1", "latest=2005-01"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
