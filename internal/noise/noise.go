// Package noise implements ETAP's iterative noise-elimination training
// procedure (Section 3.3.2), modelled on Brodley & Friedl [3]:
//
//  1. Learn classifier parameters using Pⁿ (noisy positive) and Pᵖ (pure
//     positive) as the positive class, N as the negative class.
//  2. Reclassify Pⁿ with the trained classifier; keep only the snippets
//     assigned the positive class.
//  3. Iterate until the noisy positive set "does not change considerably".
//
// Pure positive data, when available, is oversampled by a factor of 3
// (Section 3.3.2).
package noise

import (
	"etap/internal/classify"
	"etap/internal/feature"
	"etap/internal/obs"
)

// The noise-elimination loop reports its per-round progress into the
// process-wide registry: how many Brodley rounds ran and how many noisy
// positives each round discarded.
var (
	mIterations = obs.Default.Counter("etap_train_noise_iterations_total",
		"Noise-elimination training rounds performed.")
	mDropped = obs.Default.Counter("etap_train_noise_dropped_total",
		"Noisy-positive examples discarded by reclassification.")
)

// DefaultOversample is the pure-positive oversampling factor from the
// paper ("we use it after oversampling it by a factor of 3").
const DefaultOversample = 3

// Trainer builds a classifier from labeled examples. The paper uses naïve
// Bayes; any classify trainer fits.
type Trainer func(examples []classify.Example) classify.Classifier

// Config controls the iteration.
type Config struct {
	// Train builds the per-iteration classifier. Required.
	Train Trainer
	// MaxIterations bounds the loop; 0 means 10. The paper's Table 1
	// reports results "after two iterations" — pass 2 to reproduce it.
	MaxIterations int
	// MinChange is the stop threshold: iteration ends when the fraction
	// of Pⁿ removed in a round is below it. 0 means 0.01.
	MinChange float64
	// Oversample is the pure-positive oversampling factor; 0 means
	// DefaultOversample.
	Oversample int
	// Threshold is the positive-class probability above which a noisy
	// example is kept; 0 means 0.5.
	Threshold float64
}

// IterationStats records one round of the loop.
type IterationStats struct {
	Iteration int
	NoisyIn   int // |Pⁿ| entering the round
	NoisyKept int // |Pⁿ| surviving reclassification
}

// Result is the outcome of the iterative procedure.
type Result struct {
	// Classifier is the classifier trained in the final round.
	Classifier classify.Classifier
	// Kept flags which noisy-positive inputs survived to the end.
	Kept []bool
	// History has one entry per round.
	History []IterationStats
}

// Iterations returns the number of training rounds performed.
func (r Result) Iterations() int { return len(r.History) }

// Learn runs the iterative noise-elimination procedure over pure-positive
// vectors (may be empty), noisy-positive vectors and negative vectors.
func Learn(purePos, noisyPos, negatives []feature.Vector, cfg Config) Result {
	if cfg.Train == nil {
		panic("noise: Config.Train is required")
	}
	maxIter := cfg.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}
	minChange := cfg.MinChange
	if minChange <= 0 {
		minChange = 0.01
	}
	oversample := cfg.Oversample
	if oversample <= 0 {
		oversample = DefaultOversample
	}
	threshold := cfg.Threshold
	if threshold <= 0 {
		threshold = 0.5
	}

	kept := make([]bool, len(noisyPos))
	for i := range kept {
		kept[i] = true
	}

	var res Result
	for iter := 1; iter <= maxIter; iter++ {
		examples := buildTrainingSet(purePos, noisyPos, kept, negatives, oversample)
		clf := cfg.Train(examples)

		in, out := 0, 0
		for i, x := range noisyPos {
			if !kept[i] {
				continue
			}
			in++
			if clf.Prob(x) >= threshold {
				out++
			} else {
				kept[i] = false
			}
		}
		res.Classifier = clf
		res.History = append(res.History, IterationStats{
			Iteration: iter, NoisyIn: in, NoisyKept: out,
		})
		mIterations.Inc()
		mDropped.Add(uint64(in - out))
		if in == 0 {
			break
		}
		removed := float64(in-out) / float64(in)
		if removed < minChange {
			break
		}
	}
	res.Kept = kept
	return res
}

// buildTrainingSet assembles the per-round training data: surviving noisy
// positives plus oversampled pure positives form the positive class; the
// negatives form the negative class.
func buildTrainingSet(purePos, noisyPos []feature.Vector, kept []bool, negatives []feature.Vector, oversample int) []classify.Example {
	n := len(noisyPos) + len(purePos)*oversample + len(negatives)
	out := make([]classify.Example, 0, n)
	for i, x := range noisyPos {
		if kept[i] {
			out = append(out, classify.Example{X: x, Label: true})
		}
	}
	for _, x := range purePos {
		for k := 0; k < oversample; k++ {
			out = append(out, classify.Example{X: x, Label: true})
		}
	}
	for _, x := range negatives {
		out = append(out, classify.Example{X: x, Label: false})
	}
	return out
}
