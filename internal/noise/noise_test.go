package noise

import (
	"math/rand"
	"testing"

	"etap/internal/classify"
	"etap/internal/feature"
)

var vocab = feature.NewVocab()

func vec(feats ...string) feature.Vector {
	return feature.Vectorize(vocab, feats, true)
}

// dataset builds noisy positive data where `noiseFrac` of the vectors are
// actually drawn from the negative distribution.
func dataset(nNoisy, nNeg int, noiseFrac float64, seed int64) (noisy, negs []feature.Vector, isNoise []bool) {
	rng := rand.New(rand.NewSource(seed))
	posWords := []string{"acquire", "merger", "deal", "buyout", "takeover"}
	negWords := []string{"weather", "game", "recipe", "movie", "travel"}
	draw := func(words []string) feature.Vector {
		var fs []string
		for j := 0; j < 4; j++ {
			fs = append(fs, words[rng.Intn(len(words))])
		}
		return vec(fs...)
	}
	for i := 0; i < nNoisy; i++ {
		if rng.Float64() < noiseFrac {
			noisy = append(noisy, draw(negWords))
			isNoise = append(isNoise, true)
		} else {
			noisy = append(noisy, draw(posWords))
			isNoise = append(isNoise, false)
		}
	}
	for i := 0; i < nNeg; i++ {
		negs = append(negs, draw(negWords))
	}
	return noisy, negs, isNoise
}

func nbTrainer(ex []classify.Example) classify.Classifier {
	return classify.TrainNaiveBayes(ex, classify.NaiveBayesConfig{})
}

func TestLearnRemovesNoise(t *testing.T) {
	noisy, negs, isNoise := dataset(300, 300, 0.25, 1)
	res := Learn(nil, noisy, negs, Config{Train: nbTrainer})

	removedNoise, removedClean := 0, 0
	for i, k := range res.Kept {
		if !k {
			if isNoise[i] {
				removedNoise++
			} else {
				removedClean++
			}
		}
	}
	totalNoise := 0
	for _, n := range isNoise {
		if n {
			totalNoise++
		}
	}
	if removedNoise < totalNoise*3/4 {
		t.Errorf("removed only %d/%d noise vectors", removedNoise, totalNoise)
	}
	if removedClean > (300-totalNoise)/10 {
		t.Errorf("removed %d clean vectors (over 10%%)", removedClean)
	}
}

func TestLearnMonotoneShrink(t *testing.T) {
	noisy, negs, _ := dataset(200, 200, 0.3, 2)
	res := Learn(nil, noisy, negs, Config{Train: nbTrainer})
	for i := 1; i < len(res.History); i++ {
		if res.History[i].NoisyIn != res.History[i-1].NoisyKept {
			t.Errorf("round %d starts with %d, previous kept %d",
				i+1, res.History[i].NoisyIn, res.History[i-1].NoisyKept)
		}
		if res.History[i].NoisyKept > res.History[i].NoisyIn {
			t.Errorf("round %d kept more than it saw", i+1)
		}
	}
}

func TestLearnConverges(t *testing.T) {
	noisy, negs, _ := dataset(200, 200, 0.2, 3)
	res := Learn(nil, noisy, negs, Config{Train: nbTrainer, MaxIterations: 50})
	if res.Iterations() >= 50 {
		t.Errorf("did not converge within %d iterations", res.Iterations())
	}
	last := res.History[len(res.History)-1]
	if last.NoisyIn > 0 {
		removed := float64(last.NoisyIn-last.NoisyKept) / float64(last.NoisyIn)
		if removed >= 0.01 {
			t.Errorf("stopped while still removing %.3f", removed)
		}
	}
}

func TestLearnTwoIterationCap(t *testing.T) {
	noisy, negs, _ := dataset(200, 200, 0.3, 4)
	res := Learn(nil, noisy, negs, Config{Train: nbTrainer, MaxIterations: 2})
	if res.Iterations() > 2 {
		t.Errorf("iterations = %d, want <= 2", res.Iterations())
	}
}

func TestLearnPurePositiveOversampling(t *testing.T) {
	// With pure positives available, the classifier should anchor on
	// them even when the noisy set is mostly noise.
	noisy, negs, _ := dataset(100, 300, 0.8, 5)
	pure := []feature.Vector{
		vec("acquire", "merger"), vec("deal", "takeover"), vec("buyout", "acquire"),
	}
	res := Learn(pure, noisy, negs, Config{Train: nbTrainer})
	probe := vec("acquire", "merger", "deal")
	if p := res.Classifier.Prob(probe); p < 0.5 {
		t.Errorf("classifier lost the positive concept: P = %v", p)
	}
}

func TestLearnEmptyNoisySet(t *testing.T) {
	pure := []feature.Vector{vec("acquire")}
	negs := []feature.Vector{vec("weather"), vec("game")}
	res := Learn(pure, nil, negs, Config{Train: nbTrainer})
	if res.Classifier == nil {
		t.Fatal("no classifier trained")
	}
	if res.Iterations() != 1 {
		t.Errorf("iterations = %d, want 1 (nothing to relabel)", res.Iterations())
	}
}

func TestLearnPanicsWithoutTrainer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on nil trainer")
		}
	}()
	Learn(nil, nil, nil, Config{})
}

func TestLearnKeptMatchesHistory(t *testing.T) {
	noisy, negs, _ := dataset(150, 150, 0.3, 6)
	res := Learn(nil, noisy, negs, Config{Train: nbTrainer})
	kept := 0
	for _, k := range res.Kept {
		if k {
			kept++
		}
	}
	last := res.History[len(res.History)-1]
	if kept != last.NoisyKept {
		t.Errorf("Kept count %d != final round NoisyKept %d", kept, last.NoisyKept)
	}
}

func TestLearnDeterministic(t *testing.T) {
	noisy, negs, _ := dataset(150, 150, 0.3, 7)
	a := Learn(nil, noisy, negs, Config{Train: nbTrainer})
	b := Learn(nil, noisy, negs, Config{Train: nbTrainer})
	if a.Iterations() != b.Iterations() {
		t.Fatalf("iteration counts differ: %d vs %d", a.Iterations(), b.Iterations())
	}
	for i := range a.Kept {
		if a.Kept[i] != b.Kept[i] {
			t.Fatal("kept sets differ between identical runs")
		}
	}
}

func BenchmarkLearn(b *testing.B) {
	noisy, negs, _ := dataset(500, 500, 0.25, 8)
	cfg := Config{Train: nbTrainer, MaxIterations: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Learn(nil, noisy, negs, cfg)
	}
}
