package etap_test

// End-to-end integration tests driving the complete ETAP pipeline the
// way cmd/etap does — crawl, train, extract, rank, persist — and
// checking the results against the corpus ground truth.

import (
	"context"
	"strings"
	"testing"

	"etap"
	"etap/internal/corpus"
	"etap/internal/gather"
)

// buildFixture creates a medium world plus the trained system for one
// driver, returning ground-truth lookups.
func buildFixture(t testing.TB, seed int64, d etap.Driver) (*etap.WorldGenerator, []etap.Document, *etap.Web, *etap.System) {
	t.Helper()
	gen := etap.NewWorldGenerator(etap.WorldConfig{
		Seed: seed, RelevantPerDriver: 50, BackgroundDocs: 150,
		HardNegativePerDriver: 15, FamousEventDocs: 5,
	})
	docs := gen.World()
	w := etap.BuildWeb(docs)
	sys := etap.NewSystem(w, etap.Config{Seed: seed, TopK: 80, NegativeCount: 800})
	var spec etap.SalesDriver
	for _, sd := range etap.DefaultDrivers() {
		if sd.ID == string(d) {
			spec = sd
		}
	}
	var pure []string
	for _, p := range gen.PurePositives(d, 25) {
		pure = append(pure, p.Text)
	}
	if _, err := sys.AddDriver(spec, pure); err != nil {
		t.Fatal(err)
	}
	return gen, docs, w, sys
}

func docIndex(docs []etap.Document) map[string]*etap.Document {
	out := make(map[string]*etap.Document, len(docs))
	for i := range docs {
		out[docs[i].URL] = &docs[i]
	}
	return out
}

func urlOf(snippetID string) string {
	return snippetID[:strings.LastIndexByte(snippetID, '#')]
}

// TestPipelineCrawlToLeads runs crawl → extract → rank → MRR and checks
// the extracted events against ground truth.
func TestPipelineCrawlToLeads(t *testing.T) {
	_, docs, w, sys := buildFixture(t, 71, etap.MergersAcquisitions)
	byURL := docIndex(docs)

	var seeds []string
	hosts := map[string]bool{}
	for _, d := range docs {
		if !hosts[d.Host] {
			hosts[d.Host] = true
			seeds = append(seeds, d.URL)
		}
	}
	crawl := etap.Crawl(context.Background(), w, etap.CrawlConfig{
		Seeds: seeds,
		Topic: []string{"merger", "acquisition", "deal"},
	})
	if len(crawl.Pages) < w.Len()/2 {
		t.Fatalf("crawl reached only %d/%d pages", len(crawl.Pages), w.Len())
	}

	events, err := sys.ExtractEvents(string(etap.MergersAcquisitions), crawl.Pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 20 {
		t.Fatalf("only %d events", len(events))
	}
	correct := 0
	for _, ev := range events {
		if byURL[urlOf(ev.SnippetID)].ContainsTrigger(ev.Text, corpus.MergersAcquisitions) {
			correct++
		}
	}
	if prec := float64(correct) / float64(len(events)); prec < 0.5 {
		t.Errorf("event precision %.2f (%d/%d)", prec, correct, len(events))
	}

	ranked := etap.RankByScore(events)
	companies := etap.CompanyMRR(ranked)
	if len(companies) == 0 {
		t.Fatal("no company scores")
	}
	prevMRR := 2.0
	for _, c := range companies {
		if c.MRR > prevMRR {
			t.Fatalf("company ranking not sorted: %+v", companies)
		}
		prevMRR = c.MRR
	}
}

// TestPipelinePersistenceAcrossSystems trains, serializes, reloads into a
// fresh system, and checks extraction equivalence end to end.
func TestPipelinePersistenceAcrossSystems(t *testing.T) {
	_, docs, w, sys := buildFixture(t, 72, etap.ChangeInManagement)
	id := string(etap.ChangeInManagement)

	data, err := sys.MarshalDriver(id)
	if err != nil {
		t.Fatal(err)
	}
	sys2 := etap.NewSystem(w, etap.Config{Seed: 72})
	if err := sys2.UnmarshalDriver(data, nil); err != nil {
		t.Fatal(err)
	}

	var pages []*etap.Page
	for _, d := range docs[:100] {
		if p, ok := w.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	a, err := sys.ExtractEvents(id, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys2.ExtractEvents(id, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ after reload: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs after reload", i)
		}
	}
}

// TestPipelineParallelFacade checks the concurrent extraction path
// through the facade types.
func TestPipelineParallelFacade(t *testing.T) {
	_, docs, w, sys := buildFixture(t, 73, etap.ChangeInManagement)
	id := string(etap.ChangeInManagement)
	var pages []*etap.Page
	for _, d := range docs {
		if p, ok := w.Page(d.URL); ok {
			pages = append(pages, p)
		}
	}
	seq, err := sys.ExtractEvents(id, pages, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	par, err := sys.ExtractEventsParallel(id, pages, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("parallel facade differs: %d vs %d", len(seq), len(par))
	}
}

// TestPipelineIncrementalMonitoring reproduces the leadmonitor example's
// flow with assertions: only new pages yield events in epoch 2.
func TestPipelineIncrementalMonitoring(t *testing.T) {
	gen, docs, w, sys := buildFixture(t, 74, etap.MergersAcquisitions)
	id := string(etap.MergersAcquisitions)

	monitor := gather.NewMonitor()
	var pages1 []*etap.Page
	for _, d := range docs {
		if p, ok := w.Page(d.URL); ok {
			pages1 = append(pages1, p)
		}
	}
	if got := monitor.Changed(pages1); len(got) != len(pages1) {
		t.Fatalf("epoch 1: %d changed, want all %d", len(got), len(pages1))
	}

	// Epoch 2: same pages plus fresh news.
	w2 := etap.NewWeb()
	for _, p := range pages1 {
		w2.AddPage(*p)
	}
	freshDocs := 0
	for i := 0; i < 10; i++ {
		d := gen.RelevantDoc(etap.MergersAcquisitions)
		w2.AddPage(etap.Page{URL: d.URL, Host: d.Host, Title: d.Title, Text: d.Text(), Links: d.Links})
		freshDocs++
	}
	w2.Freeze()
	var pages2 []*etap.Page
	for _, u := range w2.URLs() {
		if p, ok := w2.Page(u); ok {
			pages2 = append(pages2, p)
		}
	}
	fresh := monitor.Changed(pages2)
	if len(fresh) != freshDocs {
		t.Fatalf("epoch 2: %d changed, want %d", len(fresh), freshDocs)
	}
	events, err := sys.ExtractEvents(id, fresh, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events from fresh M&A pages")
	}
}
